// Package trainer runs synchronous data-parallel language-model training
// over the simulated cluster, wiring together every substrate exactly the
// way §II-B describes the production workflow:
//
//   - each rank (goroutine) owns a full model replica and a private shard
//     of the training stream;
//   - dense RNN/projection gradients synchronize with a ring ALLREDUCE;
//   - input-embedding gradients go through a pluggable core.Exchanger —
//     the baseline ALLGATHER or the paper's unique exchange;
//   - output-embedding gradients do the same under sampled softmax, with
//     the per-rank sampler seeds assigned by a §III-B seeding strategy;
//     under full softmax (char LM) they ALLREDUCE like dense parameters;
//   - FP16 wire compression (§III-C) applies to all gradient payloads when
//     configured.
//
// Replicas start identical and receive identical global updates each step,
// so they stay bit-identical — the invariant §II-B states ("the model
// parameters on all GPUs are the same during the next training step"),
// which the tests assert.
package trainer

import (
	"bytes"
	"fmt"
	"log/slog"
	"math"
	"time"

	"zipflm/internal/ckpt"
	"zipflm/internal/cluster"
	"zipflm/internal/collective"
	"zipflm/internal/compress"
	"zipflm/internal/core"
	"zipflm/internal/metrics"
	"zipflm/internal/model"
	"zipflm/internal/optim"
	"zipflm/internal/perfmodel"
	"zipflm/internal/sampling"
	"zipflm/internal/telemetry"
	"zipflm/internal/tensor"
	"zipflm/internal/vclock"
)

// Config assembles one distributed training run.
type Config struct {
	// Model is the per-replica architecture.
	Model model.Config
	// Ranks is G, the simulated GPU count.
	Ranks int
	// BatchPerRank is sequences per rank per step (paper: 32 word LM,
	// 128 char LM).
	BatchPerRank int
	// SeqLen is tokens per sequence (paper: 20 word LM, 150 char LM).
	SeqLen int
	// LR is the epoch-0 learning rate for this run (experiments apply the
	// optim.Schedule cluster-size scaling before constructing the
	// trainer).
	LR float64
	// LRDecay multiplies the rate each epoch (§IV-B: "decay factor
	// ranging from 0.85 to 0.95"); 0 or 1 disables decay.
	LRDecay float64
	// Exchange is the embedding-gradient engine (§III-A).
	Exchange core.Exchanger
	// Wire, when non-nil, compresses gradient payloads on the wire —
	// half.NewScaler for the paper's FP16 compression-scaling (§III-C);
	// any collective.Wire works. Must be a nil interface (not a wrapped
	// typed-nil pointer) to mean FP32.
	Wire collective.Wire
	// SeedStrategy controls sampled-softmax seed sharing (§III-B).
	SeedStrategy sampling.Strategy
	// NewOptimizer builds one dense-parameter optimizer per rank (stateful
	// optimizers like Adam must not share state across replicas); nil
	// means SGD.
	NewOptimizer func() optim.Optimizer
	// NewSampler builds the sampled-softmax candidate source for a given
	// seed; nil means the paper's log-uniform sampler. The exact-unigram
	// alias sampler is the main alternative
	// (sampling.NewUnigramSampler).
	NewSampler func(vocab int, seed uint64) sampling.CandidateSampler
	// BaseSeed makes the whole run reproducible.
	BaseSeed uint64
	// Workers selects the tensor compute backend for every replica: > 1
	// tiles each matmul across that many goroutines (one shared
	// tensor.Parallel — the ranks' kernel calls serialize on it, each call
	// then using every worker, like simulated GPUs sharing one device).
	// 0 keeps the process default (tensor.Default, which honors
	// ZIPFLM_WORKERS); 1 forces the serial reference. Every setting
	// produces bit-identical replicas, gradients, and losses — the backend
	// contract — so Workers is a speed knob, not part of the trajectory,
	// and deliberately not persisted in checkpoints.
	Workers int
	// DeviceCapacity bounds per-rank memory (0 = unlimited).
	DeviceCapacity int64
	// ClipNorm, when > 0, clips each dense gradient tensor's L2 norm.
	ClipNorm float64
	// Overlap enables the bucketed asynchronous dense-gradient reduction:
	// each dense layer's ring all-reduce starts the moment its backward
	// pass completes, overlapping communication of layer L with
	// backpropagation of layer L−1 and with the sparse embedding exchange.
	// Gradients, wire bytes, and replicas are bit-identical to the
	// synchronous path (tested); only wall-clock changes.
	Overlap bool
	// BucketBytes overrides the async bucket-close threshold
	// (collective.DefaultBucketBytes when 0). Only meaningful with
	// Overlap.
	BucketBytes int64
	// Hardware, when non-nil, threads the virtual clock through the run:
	// every synchronous collective advances the participating ranks'
	// clocks by α + bytes/β on the profile's ring link, per-step compute
	// advances each rank by SimFLOPsPerStep ÷ achieved FLOP/s, and the
	// embedding updates advance by their read-modify-write bytes ÷ MemBW.
	// StepStats then carries the predicted wall-clock decomposition next
	// to the measured one. nil (the default) leaves every hot path on the
	// exact pre-simulation code path. The clock prices synchronous
	// collectives only, so New rejects Hardware combined with Overlap
	// (async buckets bypass the cost model and would read as free).
	Hardware *perfmodel.Hardware
	// SimFLOPsPerStep is the modeled per-rank compute per step charged to
	// the virtual clock (0 = communication/update-only simulation). Only
	// meaningful with Hardware.
	SimFLOPsPerStep float64
	// SimAchievedFrac is the fraction of peak FLOP/s the model's kernels
	// reach (paper §V: 0.40 word LM, 0.64 char LM); ≤ 0 means peak. Only
	// meaningful with Hardware.
	SimAchievedFrac float64
	// CheckpointEvery captures a full-state checkpoint every this many
	// global steps (0 disables). The capture is read-only, so it never
	// perturbs the training trajectory. With CheckpointDir set the state
	// is also written to disk (atomically, CRC-framed); without it the
	// latest capture is held in memory as the fault-rollback point only.
	CheckpointEvery int
	// CheckpointDir is the on-disk store (a ckpt.Dir) checkpoints land in.
	CheckpointDir string
	// CheckpointKeepLast / CheckpointKeepEvery tune the store's retention
	// (keep-last-N rollback tier, keep-every-K-steps archive tier); zero
	// values take ckpt.NewDir's defaults.
	CheckpointKeepLast  int
	CheckpointKeepEvery int
	// Faults injects rank failures at simulated times: after any step
	// whose virtual clock crosses a scheduled failure, the trainer rolls
	// every replica back to the last checkpoint (or the initial state) and
	// replays. Requires Hardware — without the virtual clock "when a rank
	// dies" is undefined.
	Faults *ckpt.FaultPlan
	// SimCheckpointSeconds is the modeled wall-clock cost of writing one
	// checkpoint at paper scale (state bytes ÷ storage bandwidth), charged
	// to every rank's clock at each capture — checkpoints are a global
	// barrier. Only meaningful with Hardware.
	SimCheckpointSeconds float64
	// SimRestartSeconds is the modeled cost of detecting a dead rank,
	// reloading the checkpoint on its replacement, and rejoining. Only
	// meaningful with Hardware.
	SimRestartSeconds float64
	// Compress, when non-nil, routes dense gradients through the adaptive
	// gradient-compression subsystem (internal/compress): top-k with
	// per-tensor error-feedback residuals via the compressed all-reduce,
	// or 8-bit per-chunk quantization on the ring wire, per the config's
	// policy. Composes with any Exchange engine and with the FP16 Wire
	// (top-k values then travel as FP16 too); the residual state is
	// carried through checkpoints so resumed runs stay bit-identical. New
	// rejects Compress combined with Overlap — the async bucket queue
	// bypasses the compressed path, so a combined run would silently train
	// uncompressed.
	Compress *compress.Config
	// Telemetry, when non-nil, publishes the trainer's step/phase metrics
	// (and the communicator's and checkpoint store's) into the registry.
	// Purely observational: the trajectory is bit-identical with or
	// without it (tested), and nil keeps every hot path uninstrumented.
	Telemetry *telemetry.Registry
	// Trace, when non-nil, records the run's timeline at two granularities,
	// each span stamped with wall time and the virtual clock. Aggregate
	// spans (cat "train", tid 0) cover each step's compute and sync phases
	// plus checkpoint saves and fault-rollback instants; summing their
	// virtual durations reproduces StepStats.SimComputeSeconds /
	// SimSyncSeconds exactly. Per-rank spans (cat "rank", tid = rank) split
	// each rank's step into compute / exchange / update, and the attached
	// communicator adds per-collective-op spans (cat "collective") — the
	// detail internal/traceview's critical-path analyzer attributes
	// stragglers and sync-wait from. Export with Tracer.WriteChromeTrace.
	Trace *telemetry.Tracer
	// Flight, when non-nil, records structured anomaly events (checkpoint
	// captures, fault rollbacks) into the flight-recorder ring and dumps
	// the ring on every rollback — the black-box context of a failure.
	// Purely observational, like Telemetry and Trace.
	Flight *telemetry.Flight
}

// EvalPoint is one validation measurement.
type EvalPoint struct {
	// Epoch is the (possibly fractional) epoch position.
	Epoch float64
	// Loss is mean validation cross-entropy (nats).
	Loss float64
	// Perplexity is exp(Loss).
	Perplexity float64
}

// StepStats aggregates per-step exchange measurements across the run.
type StepStats struct {
	// Steps executed.
	Steps int
	// InputUniqueGlobal / OutputUniqueGlobal accumulate U_g sums for
	// averaging.
	InputUniqueGlobal  int64
	OutputUniqueGlobal int64
	// WireBytesPerRank is the max-over-ranks total collective traffic.
	WireBytesPerRank int64
	// PeakMemory is the max-over-ranks device peak (exchange scratch).
	PeakMemory int64
	// ComputeTime / SyncTime split the run's wall-clock between the
	// forward/backward phase and the synchronization phase — the same
	// decomposition perfmodel applies to the paper's hardware.
	ComputeTime time.Duration
	SyncTime    time.Duration
	// SimComputeSeconds / SimSyncSeconds are the virtual-clock counterpart
	// of ComputeTime / SyncTime: predicted seconds on Config.Hardware,
	// split the same way (compute phase vs collectives + embedding
	// update). Zero unless Config.Hardware is set.
	SimComputeSeconds float64
	SimSyncSeconds    float64
}

// AvgInputUnique returns the mean per-step global unique word count seen by
// the input-embedding exchange.
func (s StepStats) AvgInputUnique() float64 {
	if s.Steps == 0 {
		return 0
	}
	return float64(s.InputUniqueGlobal) / float64(s.Steps)
}

// AvgOutputUnique is the sampled-softmax counterpart.
func (s StepStats) AvgOutputUnique() float64 {
	if s.Steps == 0 {
		return 0
	}
	return float64(s.OutputUniqueGlobal) / float64(s.Steps)
}

// SimStepSeconds returns the predicted wall-clock of one step — the
// virtual-clock total divided by steps. Zero without Config.Hardware.
func (s StepStats) SimStepSeconds() float64 {
	if s.Steps == 0 {
		return 0
	}
	return (s.SimComputeSeconds + s.SimSyncSeconds) / float64(s.Steps)
}

// Result is what a training run returns.
type Result struct {
	// Evals are the validation points, in order.
	Evals []EvalPoint
	// Stats aggregates exchange costs.
	Stats StepStats
	// FinalLoss is the last validation loss.
	FinalLoss float64
}

// Trainer owns the replicas and shards.
type Trainer struct {
	cfg    Config
	clu    *cluster.Cluster
	comm   *collective.Comm
	models []*model.LM
	opts   []optim.Optimizer
	ws     []*core.Workspace
	shards [][]int
	valid  []int
	// step is the global training-step counter; Run and Steps both
	// advance it, so interleaved calls keep consuming fresh batches (and
	// fresh per-step sampler seeds) instead of retraining from zero. lr
	// and nextDecay carry the per-epoch decay schedule across calls the
	// same way, so a resumed Run continues the decayed trajectory rather
	// than restarting from cfg.LR.
	step      int
	lr        float64
	nextDecay int
	// cmp holds one compression engine per rank (nil when Config.Compress
	// is nil): the per-rank error-feedback residuals and quantizer
	// streams.
	cmp []*compress.Engine
	// ckptDir is the on-disk store (nil without Config.CheckpointDir);
	// lastCkpt is the newest captured state — the fault-rollback target.
	ckptDir  *ckpt.Dir
	lastCkpt *ckpt.State
	ftStats  FaultStats
	// tel holds the resolved telemetry instruments (nil when
	// Config.Telemetry is nil).
	tel *trainerTelemetry
}

// FaultStats aggregates the fault-tolerance side of a run: how many
// checkpoints were captured, how many failures were injected, and how much
// work and simulated time they cost.
type FaultStats struct {
	// Checkpoints captured (written to disk when a store is configured).
	Checkpoints int
	// Faults consumed from the plan.
	Faults int
	// LostSteps is the total steps rolled back and replayed.
	LostSteps int
	// SimCheckpointSeconds / SimRestartSeconds are the virtual seconds
	// charged for checkpoint writes and failure recoveries.
	SimCheckpointSeconds float64
	SimRestartSeconds    float64
}

// New builds a trainer over the given train/validation token streams. The
// training stream is sharded contiguously across ranks.
func New(cfg Config, train, valid []int) (*Trainer, error) {
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("trainer: need at least one rank")
	}
	if cfg.BatchPerRank <= 0 || cfg.SeqLen <= 0 {
		return nil, fmt.Errorf("trainer: BatchPerRank and SeqLen must be positive")
	}
	if cfg.Exchange == nil {
		cfg.Exchange = core.UniqueExchange{}
	}
	if cfg.NewOptimizer == nil {
		cfg.NewOptimizer = func() optim.Optimizer { return optim.SGD{} }
	}
	perRank := len(train) / cfg.Ranks
	need := cfg.BatchPerRank*cfg.SeqLen + 1
	if cfg.Model.Stateful {
		// Each of the B contiguous lanes needs more than one window.
		need = cfg.BatchPerRank * (cfg.SeqLen + 2)
	}
	if perRank < need {
		return nil, fmt.Errorf("trainer: shard of %d tokens below one batch (%d)", perRank, need)
	}
	t := &Trainer{
		cfg:   cfg,
		clu:   cluster.New(cfg.Ranks, cfg.DeviceCapacity),
		comm:  collective.New(cfg.Ranks),
		valid: valid,
	}
	if cfg.BucketBytes > 0 {
		t.comm.SetBucketBytes(cfg.BucketBytes)
	}
	if cfg.Telemetry != nil {
		t.tel = newTrainerTelemetry(cfg.Telemetry)
		t.comm.AttachTelemetry(cfg.Telemetry)
		cfg.Telemetry.ObserveTracer(cfg.Trace)
	}
	if cfg.Trace != nil {
		t.comm.AttachTrace(cfg.Trace)
	}
	if cfg.Hardware != nil {
		if cfg.Overlap {
			// The virtual clock prices synchronous collectives only;
			// async buckets complete at scheduler-dependent times and
			// deliberately bypass the cost model (collective.CostModel),
			// so a combined run would report dense communication as free.
			return nil, fmt.Errorf("trainer: Hardware (virtual clock) cannot price Overlap mode; run the simulation synchronously")
		}
		// Thread the virtual clock: the flat communicator's ring runs on
		// PCIe while the cluster fits in one node, on the InfiniBand
		// boundary once it spans nodes (Table II).
		t.comm.AttachCost(&collective.CostModel{
			Link:   cfg.Hardware.RingLink(cfg.Ranks),
			Clocks: t.clu.Clocks(),
		})
		// A hierarchical exchange routes its collectives through the
		// hierarchy's own communicators; price them with the topology's
		// fabric split (groups on PCIe, leaders on InfiniBand).
		if hx, ok := cfg.Exchange.(core.HierarchicalExchange); ok && hx.Hier != nil {
			if hx.Hier.G != cfg.Ranks {
				return nil, fmt.Errorf("trainer: hierarchy spans %d ranks but cluster has %d", hx.Hier.G, cfg.Ranks)
			}
			hx.Hier.AttachCost(cfg.Hardware.IntraLink(), cfg.Hardware.InterLink(), t.clu.Clocks())
		}
	}
	t.ws = make([]*core.Workspace, cfg.Ranks)
	for r := range t.ws {
		t.ws[r] = core.NewWorkspace()
	}
	// Identical replicas: build rank 0, copy into the rest.
	t.models = make([]*model.LM, cfg.Ranks)
	t.opts = make([]optim.Optimizer, cfg.Ranks)
	mc := cfg.Model
	mc.Seed = cfg.BaseSeed
	var be tensor.Backend
	if cfg.Workers > 0 {
		be = tensor.New(cfg.Workers)
	}
	for r := 0; r < cfg.Ranks; r++ {
		t.models[r] = model.NewLM(mc)
		if be != nil {
			t.models[r].SetBackend(be)
		}
		if r > 0 {
			t.models[r].CopyWeightsFrom(t.models[0])
		}
		t.opts[r] = cfg.NewOptimizer()
	}
	t.shards = make([][]int, cfg.Ranks)
	for r := 0; r < cfg.Ranks; r++ {
		t.shards[r] = train[r*perRank : (r+1)*perRank]
	}
	if cfg.Compress != nil {
		if cfg.Overlap {
			// The async bucket queue reduces raw tensors on its own ring;
			// gradients routed through it would skip the compressors and
			// their error-feedback accounting entirely, so a combined run
			// would look configured-but-uncompressed. Mirror the
			// Hardware+Overlap guard and fail loudly instead.
			return nil, fmt.Errorf("trainer: Compress cannot combine with Overlap — async buckets bypass the compressed path; run synchronously")
		}
		cc, err := cfg.Compress.Validate()
		if err != nil {
			return nil, fmt.Errorf("trainer: %w", err)
		}
		if cc.Seed == 0 {
			// Tie the quantizer streams to the run seed so the whole run
			// stays reproducible from BaseSeed alone.
			cc.Seed = cfg.BaseSeed ^ 0xc0445e55c0445e55
		}
		t.cmp = make([]*compress.Engine, cfg.Ranks)
		for r := range t.cmp {
			t.cmp[r] = compress.NewEngine(cc, cfg.Wire, r)
		}
	}
	t.lr = cfg.LR
	t.nextDecay = t.StepsPerEpoch()
	if cfg.Faults != nil && cfg.Hardware == nil {
		return nil, fmt.Errorf("trainer: Faults need Hardware — failure times are defined on the virtual clock")
	}
	if cfg.CheckpointDir != "" {
		dir, err := ckpt.NewDir(cfg.CheckpointDir, cfg.CheckpointKeepLast, cfg.CheckpointKeepEvery)
		if err != nil {
			return nil, fmt.Errorf("trainer: %w", err)
		}
		dir.Instrument(cfg.Telemetry)
		t.ckptDir = dir
	}
	if cfg.Faults != nil {
		// A fault before the first periodic checkpoint rolls back to the
		// initial state, so capture it up front.
		st, err := t.CaptureState()
		if err != nil {
			return nil, err
		}
		t.lastCkpt = st
	}
	return t, nil
}

// Resume builds a trainer over cfg and restores the newest checkpoint from
// the given directory (written by a previous run with
// Config.CheckpointDir). The token streams and configuration must match
// the checkpointing run's for the resumed trajectory to be bit-identical
// to an uninterrupted one.
func Resume(cfg Config, dir string, train, valid []int) (*Trainer, error) {
	d, err := ckpt.NewDir(dir, cfg.CheckpointKeepLast, cfg.CheckpointKeepEvery)
	if err != nil {
		return nil, fmt.Errorf("trainer: %w", err)
	}
	st, err := d.Latest()
	if err != nil {
		return nil, fmt.Errorf("trainer: %w", err)
	}
	t, err := New(cfg, train, valid)
	if err != nil {
		return nil, err
	}
	if err := t.RestoreState(st); err != nil {
		return nil, err
	}
	return t, nil
}

// CaptureState snapshots the full training state at the current step
// boundary: model weights and optimizer state once (replicas are
// bit-identical between steps — the §II-B invariant ReplicasInSync
// asserts), RNG streams and carried recurrent state per rank, and the
// step/LR-schedule position. The capture is read-only.
func (t *Trainer) CaptureState() (*ckpt.State, error) {
	var mb bytes.Buffer
	if err := t.models[0].Save(&mb); err != nil {
		return nil, fmt.Errorf("trainer: checkpoint: %w", err)
	}
	st := &ckpt.State{
		Step:       t.step,
		LR:         t.lr,
		NextDecay:  t.nextDecay,
		Ranks:      t.cfg.Ranks,
		ModelBytes: mb.Bytes(),
	}
	if sn, ok := t.opts[0].(optim.Snapshotter); ok {
		st.Opt = sn.Snapshot()
	}
	for r := 0; r < t.cfg.Ranks; r++ {
		st.RNG = append(st.RNG, t.models[r].RNGState())
	}
	if t.cfg.Model.Stateful {
		for r := 0; r < t.cfg.Ranks; r++ {
			st.RNN = append(st.RNN, t.models[r].CarriedRNNState())
		}
	}
	if t.cmp != nil {
		// Per-rank error-feedback residuals: unsent gradient mass is part
		// of the training state, so dropping it on resume would change the
		// trajectory.
		for r := 0; r < t.cfg.Ranks; r++ {
			st.Compress = append(st.Compress, t.cmp[r].Snapshot())
		}
	}
	return st, nil
}

// RestoreState reinstates a state captured by CaptureState (possibly in a
// previous process): every replica's weights, every optimizer's moments,
// per-rank RNG streams and carried recurrent state, and the step/LR
// position. After it returns, the next trained step is exactly the one an
// uninterrupted run would have executed.
func (t *Trainer) RestoreState(st *ckpt.State) error {
	if st.Ranks != t.cfg.Ranks {
		return fmt.Errorf("trainer: checkpoint spans %d ranks, cluster has %d", st.Ranks, t.cfg.Ranks)
	}
	lm, err := st.LM()
	if err != nil {
		return fmt.Errorf("trainer: restore: %w", err)
	}
	if lm.Cfg != t.models[0].Cfg {
		return fmt.Errorf("trainer: checkpoint model %+v does not match configured %+v", lm.Cfg, t.models[0].Cfg)
	}
	if st.Opt.Kind != "" {
		for r := 0; r < t.cfg.Ranks; r++ {
			sn, ok := t.opts[r].(optim.Snapshotter)
			if !ok {
				return fmt.Errorf("trainer: checkpoint carries %q optimizer state but the configured optimizer cannot restore it", st.Opt.Kind)
			}
			if err := sn.Restore(st.Opt); err != nil {
				return fmt.Errorf("trainer: restore: %w", err)
			}
		}
	}
	for r := 0; r < t.cfg.Ranks; r++ {
		t.models[r].CopyWeightsFrom(lm)
		if len(st.RNG) == t.cfg.Ranks {
			t.models[r].SetRNGState(st.RNG[r])
		}
		if len(st.RNN) == t.cfg.Ranks {
			if err := t.models[r].SetCarriedRNNState(st.RNN[r]); err != nil {
				return fmt.Errorf("trainer: restore: %w", err)
			}
		} else {
			t.models[r].ResetRNNState()
		}
	}
	if t.cmp != nil {
		if len(st.Compress) != t.cfg.Ranks {
			return fmt.Errorf("trainer: Compress configured but checkpoint carries %d compression states for %d ranks", len(st.Compress), t.cfg.Ranks)
		}
		for r := 0; r < t.cfg.Ranks; r++ {
			if err := t.cmp[r].Restore(st.Compress[r]); err != nil {
				return fmt.Errorf("trainer: restore: %w", err)
			}
		}
	} else if len(st.Compress) != 0 {
		return fmt.Errorf("trainer: checkpoint carries compression state but Compress is not configured")
	}
	t.step = st.Step
	t.lr = st.LR
	t.nextDecay = st.NextDecay
	t.lastCkpt = st
	return nil
}

// afterStep runs the fault-tolerance bookkeeping after each committed
// step: periodic checkpoint capture (plus the modeled write barrier on the
// virtual clock), then failure injection — any fault whose simulated time
// has passed rolls the run back to the last checkpoint. It reports whether
// a rollback happened so callers can discard bookkeeping for the replayed
// span.
func (t *Trainer) afterStep() (rolledBack bool, err error) {
	if t.cfg.CheckpointEvery > 0 && t.step%t.cfg.CheckpointEvery == 0 {
		ckptStart := time.Now()
		vtsBefore := t.clu.MaxClock()
		st, err := t.CaptureState()
		if err != nil {
			return false, err
		}
		if t.ckptDir != nil {
			if _, err := t.ckptDir.Save(st); err != nil {
				return false, fmt.Errorf("trainer: %w", err)
			}
		}
		t.lastCkpt = st
		t.ftStats.Checkpoints++
		if t.cfg.Hardware != nil && t.cfg.SimCheckpointSeconds > 0 {
			vclock.SyncAdvance(t.clu.Clocks(), t.cfg.SimCheckpointSeconds)
			t.ftStats.SimCheckpointSeconds += t.cfg.SimCheckpointSeconds
		}
		if t.tel != nil {
			t.tel.checkpoints.Inc()
		}
		t.cfg.Trace.Span("train", "checkpoint", 0, ckptStart, time.Since(ckptStart),
			vtsBefore, t.clu.MaxClock()-vtsBefore)
		t.cfg.Flight.Record(slog.LevelInfo, "checkpoint",
			"step", t.step, "vclock_s", t.clu.MaxClock(), "on_disk", t.ckptDir != nil)
	}
	if t.cfg.Faults != nil {
		for {
			now := t.clu.MaxClock()
			_, ok := t.cfg.Faults.Next(now)
			if !ok {
				break
			}
			// The scheduled rank died at its simulated time: every step since
			// the last checkpoint is lost. Restore the checkpoint into the
			// replacement's (and every survivor's) replica and charge the
			// recovery. Virtual time never rewinds — the lost span stays on
			// the clock as wasted time, which is exactly what goodput
			// measures.
			lost := t.step - t.lastCkpt.Step
			t.ftStats.Faults++
			t.ftStats.LostSteps += lost
			t.cfg.Trace.Instant("train", "fault-rollback", 0, time.Now(), now)
			t.cfg.Flight.Record(slog.LevelWarn, "fault-rollback",
				"step", t.step, "restore_step", t.lastCkpt.Step, "lost_steps", lost,
				"vclock_s", now, "faults_total", t.ftStats.Faults)
			if err := t.RestoreState(t.lastCkpt); err != nil {
				return true, err
			}
			t.cfg.Flight.Trigger("fault-rollback")
			rolledBack = true
			if t.cfg.SimRestartSeconds > 0 {
				vclock.SyncAdvance(t.clu.Clocks(), t.cfg.SimRestartSeconds)
				t.ftStats.SimRestartSeconds += t.cfg.SimRestartSeconds
			}
			if t.tel != nil {
				t.tel.faults.Inc()
				t.tel.lostSteps.Add(int64(lost))
				t.tel.goodput.Set(t.goodputRatio())
			}
		}
	}
	return rolledBack, nil
}

// FaultStats returns the run's fault-tolerance counters so far.
func (t *Trainer) FaultStats() FaultStats { return t.ftStats }

// Step returns the global step counter (the number of committed steps).
func (t *Trainer) Step() int { return t.step }

// lrForStep returns the learning rate for the current global step,
// applying the per-epoch decay (§IV-B) the first time each epoch boundary
// is crossed — shared by Run and Steps so the schedule survives
// interleaved calls.
func (t *Trainer) lrForStep() float64 {
	if t.cfg.LRDecay > 0 && t.cfg.LRDecay != 1 {
		for t.step >= t.nextDecay {
			t.lr *= t.cfg.LRDecay
			t.nextDecay += t.StepsPerEpoch()
		}
	}
	return t.lr
}

// resetStateAtEpoch zeroes carried RNN state when the global step sits on
// an epoch boundary: stateful feeding's lanes jump back to their starts
// there, so the carried state no longer matches the text. Run and Steps
// share it so both entry points train identically.
func (t *Trainer) resetStateAtEpoch() {
	if t.cfg.Model.Stateful && t.step%t.StepsPerEpoch() == 0 {
		for _, m := range t.models {
			m.ResetRNNState()
		}
	}
}

// batchAt slices one (T×B) batch out of a shard at the given step index.
// In stateless mode sequence b of step s starts at an arbitrary wrapped
// offset; in stateful mode the shard is divided into B contiguous lanes and
// consecutive steps read consecutive windows of each lane, so the carried
// RNN state always continues the text it left off (standard truncated-BPTT
// feeding).
func (t *Trainer) batchAt(shard []int, step int) (inputs, targets [][]int) {
	b := t.cfg.BatchPerRank
	s := t.cfg.SeqLen
	usable := len(shard) - 1
	inputs = make([][]int, s)
	targets = make([][]int, s)
	for st := 0; st < s; st++ {
		inputs[st] = make([]int, b)
		targets[st] = make([]int, b)
	}
	if t.cfg.Model.Stateful {
		laneLen := usable / b
		for seq := 0; seq < b; seq++ {
			base := seq * laneLen
			off := base + (step*s)%(laneLen-s)
			for st := 0; st < s; st++ {
				inputs[st][seq] = shard[off+st]
				targets[st][seq] = shard[off+st+1]
			}
		}
		return inputs, targets
	}
	span := b * s
	for seq := 0; seq < b; seq++ {
		off := (step*span + seq*s) % (usable - s)
		for st := 0; st < s; st++ {
			inputs[st][seq] = shard[off+st]
			targets[st][seq] = shard[off+st+1]
		}
	}
	return inputs, targets
}

// StepsPerEpoch returns how many steps one pass over the training shards
// takes.
func (t *Trainer) StepsPerEpoch() int {
	span := t.cfg.BatchPerRank * t.cfg.SeqLen
	n := (len(t.shards[0]) - 1) / span
	if n < 1 {
		n = 1
	}
	return n
}

// Model returns rank r's replica (replicas are identical between steps).
func (t *Trainer) Model(r int) *model.LM { return t.models[r] }

// Comm exposes the communicator for traffic inspection.
func (t *Trainer) Comm() *collective.Comm { return t.comm }

// Cluster exposes the device accountants.
func (t *Trainer) Cluster() *cluster.Cluster { return t.clu }

// SimSeconds returns the run's predicted wall-clock so far: the latest
// virtual time across ranks. Zero unless Config.Hardware is set.
func (t *Trainer) SimSeconds() float64 { return t.clu.MaxClock() }

// Run trains for the given number of epochs, validating evalsPerEpoch times
// per epoch (at least once, at each epoch end). It returns the evaluation
// trace and aggregated exchange statistics.
func (t *Trainer) Run(epochs int, evalsPerEpoch int) (Result, error) {
	if evalsPerEpoch < 1 {
		evalsPerEpoch = 1
	}
	stepsPerEpoch := t.StepsPerEpoch()
	evalEvery := stepsPerEpoch / evalsPerEpoch
	if evalEvery < 1 {
		evalEvery = 1
	}
	res := Result{}
	// Snapshot the traffic counters so the Result reports this Run's own
	// wire bytes, not lifetime totals (earlier Steps calls — warm-ups in
	// benches — would otherwise inflate the figure).
	wireBefore := t.comm.MaxStats().Total()
	seeds := sampling.Assign(t.cfg.SeedStrategy, t.cfg.Ranks, t.cfg.BaseSeed+1)

	target := t.step + epochs*stepsPerEpoch
	lastEval := t.step - evalEvery
	for t.step < target {
		step := t.step
		lr := t.lrForStep()
		t.resetStateAtEpoch()
		stats, err := t.trainStep(step, lr, seeds)
		if err != nil {
			return res, err
		}
		t.step++
		res.Stats.Steps++
		res.Stats.InputUniqueGlobal += int64(stats.inUnique)
		res.Stats.OutputUniqueGlobal += int64(stats.outUnique)
		res.Stats.ComputeTime += stats.computeTime
		res.Stats.SyncTime += stats.syncTime
		res.Stats.SimComputeSeconds += stats.simCompute
		res.Stats.SimSyncSeconds += stats.simSync

		rolled, err := t.afterStep()
		if err != nil {
			return res, err
		}
		if rolled {
			// An injected failure rolled the run back: drop evaluations
			// recorded past the restored step (the loop will replay and
			// re-record them) and keep going toward the same commit target.
			for len(res.Evals) > 0 &&
				res.Evals[len(res.Evals)-1].Epoch > (float64(t.step)+0.5)/float64(stepsPerEpoch) {
				res.Evals = res.Evals[:len(res.Evals)-1]
			}
			if n := len(res.Evals); n > 0 {
				res.FinalLoss = res.Evals[n-1].Loss
			} else {
				res.FinalLoss = 0
			}
			if lastEval >= t.step {
				lastEval = t.step - evalEvery
			}
			continue
		}

		// Validate on the periodic schedule, plus once at the very end
		// unless a periodic eval just happened.
		if (step+1)%evalEvery == 0 || (t.step == target && step-lastEval >= evalEvery/2) {
			lastEval = step
			loss := t.Validate()
			ep := EvalPoint{
				Epoch:      float64(step+1) / float64(stepsPerEpoch),
				Loss:       loss,
				Perplexity: metrics.Perplexity(loss),
			}
			res.Evals = append(res.Evals, ep)
			res.FinalLoss = loss
		}
	}
	res.Stats.WireBytesPerRank = t.comm.MaxStats().Total() - wireBefore
	res.Stats.PeakMemory = t.clu.MaxPeak()
	return res, nil
}

// Steps runs training until n more steps are committed, without
// validating — the raw hot loop the step benchmarks and the overlap/faults
// experiments time. It advances the trainer's global step counter and the
// LR-decay schedule, so consecutive calls (and a later Run) consume fresh
// batches at the schedule's current learning rate rather than retraining
// from step zero. Under failure injection, rolled-back steps are replayed
// until the commit target is reached (FaultStats reports the lost work).
func (t *Trainer) Steps(n int) error {
	seeds := sampling.Assign(t.cfg.SeedStrategy, t.cfg.Ranks, t.cfg.BaseSeed+1)
	target := t.step + n
	for t.step < target {
		t.resetStateAtEpoch()
		if _, err := t.trainStep(t.step, t.lrForStep(), seeds); err != nil {
			return err
		}
		t.step++
		if _, err := t.afterStep(); err != nil {
			return err
		}
	}
	return nil
}

type stepStats struct {
	inUnique, outUnique   int
	computeTime, syncTime time.Duration
	simCompute, simSync   float64
	// simStart / simAfterCompute are the virtual-clock positions at the
	// start of each phase, carried so trace spans can place their virtual
	// timestamps (zero without Hardware).
	simStart, simAfterCompute float64
}

// trainStep executes one synchronous step across all ranks.
//
// With cfg.Overlap, dense-gradient ring reductions run asynchronously on
// the communicator's bucket queue: a layer's all-reduce is submitted by a
// backward hook the moment the layer finishes backpropagating (overlapping
// the reduction of layer L with the backprop of layer L−1), the bucket is
// flushed at the start of phase 2, and the sparse embedding exchange then
// proceeds while the dense rings are still in flight (the async ring and
// the synchronous collectives use disjoint channel sets). Both modes apply
// bit-identical arithmetic in the same per-tensor order, so replicas and
// wire-byte counters match exactly between them.
func (t *Trainer) trainStep(step int, lrNow float64, seeds []uint64) (stepStats, error) {
	g := t.cfg.Ranks
	results := make([]model.StepResult, g)
	samplers := make([]sampling.CandidateSampler, g)
	pendings := make([][]*collective.Pending, g)
	var agg stepStats

	sim := t.cfg.Hardware
	if sim != nil {
		agg.simStart = t.clu.MaxClock()
	}

	// Phase 1 (parallel): forward/backward on every rank, with dense
	// reductions streaming out mid-backprop in Overlap mode.
	phaseStart := time.Now()
	err := t.clu.Run(func(rank int, dev *cluster.Device) error {
		var cT0 time.Time
		var cV0 float64
		if t.cfg.Trace != nil {
			cT0 = time.Now()
			cV0 = dev.Clock.Now()
		}
		m := t.models[rank]
		m.ZeroGrads()
		var sampler sampling.CandidateSampler
		if t.cfg.Model.Sampled > 0 {
			// Re-seed per step so ranks sharing a §III-B seed draw the
			// same candidates every step while the stream still varies
			// across steps.
			stepSeed := seeds[rank] + uint64(step)*0x9e3779b9
			if t.cfg.NewSampler != nil {
				sampler = t.cfg.NewSampler(t.cfg.Model.Vocab, stepSeed)
			} else {
				sampler = sampling.NewSampler(t.cfg.Model.Vocab, stepSeed)
			}
		}
		samplers[rank] = sampler
		inputs, targets := t.batchAt(t.shards[rank], step)
		var hook model.BackwardHook
		if t.cfg.Overlap {
			hook = func(layer model.Layer) {
				for _, p := range layer.Params() {
					pendings[rank] = append(pendings[rank],
						t.comm.AllReduceAsync(rank, p.Grad, t.cfg.Wire))
				}
				// Flush per layer so the layer's reduction genuinely
				// starts now, overlapping the next layer's backward —
				// the bucket threshold then only splits layers larger
				// than one bucket.
				t.comm.FlushAsync(rank)
			}
		}
		results[rank] = m.ForwardBackwardHooked(inputs, targets, sampler, hook)
		if sim != nil && t.cfg.SimFLOPsPerStep > 0 {
			// The forward/backward pass: modeled FLOPs at the workload's
			// achieved fraction of peak, charged to this rank's clock.
			dev.AdvanceCompute(int64(t.cfg.SimFLOPsPerStep), *sim, t.cfg.SimAchievedFrac)
		}
		if tr := t.cfg.Trace; tr != nil {
			tr.Span("rank", "compute", rank, cT0, time.Since(cT0), cV0, dev.Clock.Now()-cV0)
		}
		return nil
	})
	if err != nil {
		return agg, err
	}
	agg.computeTime = time.Since(phaseStart)
	if sim != nil {
		agg.simAfterCompute = t.clu.MaxClock()
		agg.simCompute = agg.simAfterCompute - agg.simStart
	}
	computeStart := phaseStart
	phaseStart = time.Now()

	// Phase 2 (parallel): synchronize and update.
	lr := float32(lrNow)
	invG := float32(1.0 / float64(g))
	errs := make([]error, g)
	inStats := make([]core.Stats, g)
	outStats := make([]core.Stats, g)
	_ = t.clu.Run(func(rank int, dev *cluster.Device) error {
		var exT0, upT0 time.Time
		var exV0, exV1 float64
		if t.cfg.Trace != nil {
			exT0 = time.Now()
			exV0 = dev.Clock.Now()
		}
		m := t.models[rank]
		ctx := &core.Ctx{Rank: rank, Comm: t.comm, Dev: dev, Wire: t.cfg.Wire, WS: t.ws[rank]}
		outDense := t.cfg.Model.Sampled == 0
		outGrad := results[rank].OutputGrad

		// Dense gradients: ring all-reduce. Synchronous mode reduces here;
		// Overlap mode already queued the layer gradients during backprop
		// and only needs to queue the full-softmax output gradient (a
		// dense V×D block that all-reduces like an RNN parameter) and
		// flush, leaving the rings to run under the sparse exchange below.
		if t.cfg.Overlap {
			if outDense {
				pendings[rank] = append(pendings[rank],
					t.comm.AllReduceAsync(rank, outGrad.Rows.Data, t.cfg.Wire))
			}
			t.comm.FlushAsync(rank)
		} else if t.cmp != nil {
			// Compressed dense path: each named tensor goes through the
			// rank's compression engine, which routes it per policy —
			// base wire, quantized ring, or top-k with error feedback.
			// The full-softmax output-embedding gradient is dense here
			// but embedding-shaped, so its name opts it into the policy's
			// Zipf-derived embedding ratio.
			for _, p := range m.DenseParams() {
				if err := t.cmp[rank].AllReduce(t.comm, rank, p.Name, p.Grad); err != nil {
					errs[rank] = err
					return nil
				}
			}
			if outDense {
				if err := t.cmp[rank].AllReduce(t.comm, rank, "outemb", outGrad.Rows.Data); err != nil {
					errs[rank] = err
					return nil
				}
			}
		} else {
			for _, p := range m.DenseParams() {
				t.comm.AllReduce(rank, p.Grad, t.cfg.Wire)
			}
			if outDense {
				t.comm.AllReduce(rank, outGrad.Rows.Data, t.cfg.Wire)
			}
		}

		// drain blocks until every async bucket this rank submitted has
		// fully reduced. It must run on EVERY exit path below: until the
		// handles release, peer ranks' bucket runners still read aliases
		// of this rank's gradient tensors (zero-copy hops), so returning
		// with pendings in flight would leave dangling readers behind an
		// aborted step.
		drain := func() {
			for _, p := range pendings[rank] {
				p.Wait()
			}
		}

		// Input embedding: the §III exchange (blackboard gathers plus the
		// synchronous ring, both disjoint from the async ring, so in
		// Overlap mode this runs concurrently with the dense reductions).
		upd, st, err := t.cfg.Exchange.Exchange(ctx, results[rank].InputGrad)
		if err != nil {
			errs[rank] = err
			drain()
			return nil
		}
		inStats[rank] = st

		// Output embedding under sampled softmax goes through the exchange
		// too.
		var updOut core.Update
		if !outDense {
			var stOut core.Stats
			updOut, stOut, err = t.cfg.Exchange.Exchange(ctx, outGrad)
			if err != nil {
				errs[rank] = err
				drain()
				return nil
			}
			outStats[rank] = stOut
		}

		// Drain the async queue, then post-process: averaging, clipping
		// and the embedding updates apply the same arithmetic to the same
		// tensors in both modes.
		drain()
		if tr := t.cfg.Trace; tr != nil {
			// The exchange span closes once every collective this rank
			// joined has completed — its virtual duration is wire time
			// plus whatever this rank waited at the barriers, which is
			// exactly the sync-wait the critical-path analyzer splits out.
			exV1 = dev.Clock.Now()
			tr.Span("rank", "exchange", rank, exT0, time.Since(exT0), exV0, exV1-exV0)
			upT0 = time.Now()
		}
		for _, p := range m.DenseParams() {
			tensor.Scale(p.Grad, invG)
			if t.cfg.ClipNorm > 0 {
				tensor.ClipL2(p.Grad, t.cfg.ClipNorm)
			}
		}
		upd.Apply(m.InEmb, -lr*invG)
		if !outDense {
			updOut.Apply(m.OutEmb, -lr*invG)
		} else {
			tensor.Scale(outGrad.Rows.Data, invG)
			core.Update{Indices: outGrad.Indices, Rows: outGrad.Rows}.
				Apply(m.OutEmb, -lr)
		}
		if sim != nil {
			// Embedding updates are a read-modify-write over the touched
			// rows: 2× row bytes of device-memory traffic (§III-A's
			// conflict-free update runs at full memory bandwidth).
			b := 2 * int64(len(upd.Indices)) * int64(m.InEmb.Cols) * 4
			if !outDense {
				b += 2 * int64(len(updOut.Indices)) * int64(m.OutEmb.Cols) * 4
			} else {
				b += 2 * int64(len(outGrad.Indices)) * int64(m.OutEmb.Cols) * 4
			}
			dev.AdvanceMemory(b, *sim)
		}
		if tr := t.cfg.Trace; tr != nil {
			tr.Span("rank", "update", rank, upT0, time.Since(upT0), exV1, dev.Clock.Now()-exV1)
		}
		return nil
	})
	for _, e := range errs {
		if e != nil {
			return agg, e
		}
	}

	// Dense optimizer step: every rank applies the identical averaged
	// gradient through its own optimizer instance, keeping replicas (and
	// any Adam state) bit-identical.
	for rank := 0; rank < g; rank++ {
		t.opts[rank].Step(t.models[rank].DenseParams(), lr)
	}

	agg.inUnique = inStats[0].UniqueGlobal
	agg.outUnique = outStats[0].UniqueGlobal
	agg.syncTime = time.Since(phaseStart)
	if sim != nil {
		agg.simSync = t.clu.MaxClock() - agg.simAfterCompute
	}
	if t.tel != nil || t.cfg.Trace != nil {
		t.observeStep(computeStart, phaseStart, agg)
	}
	return agg, nil
}

// Validate computes mean validation loss (nats) on rank 0's replica.
func (t *Trainer) Validate() float64 {
	if len(t.valid) < 2 {
		return math.NaN()
	}
	lossSum, count := t.models[0].EvalLoss(t.valid, t.cfg.SeqLen)
	if count == 0 {
		return math.NaN()
	}
	return lossSum / float64(count)
}

// ReplicasInSync verifies every replica's parameters match rank 0 exactly —
// the §II-B synchronization invariant. Returns the first mismatch found.
func (t *Trainer) ReplicasInSync() error {
	ref := t.models[0]
	for r := 1; r < t.cfg.Ranks; r++ {
		m := t.models[r]
		for i := range ref.InEmb.Data {
			if m.InEmb.Data[i] != ref.InEmb.Data[i] {
				return fmt.Errorf("trainer: rank %d input embedding diverged at %d", r, i)
			}
		}
		for i := range ref.OutEmb.Data {
			if m.OutEmb.Data[i] != ref.OutEmb.Data[i] {
				return fmt.Errorf("trainer: rank %d output embedding diverged at %d", r, i)
			}
		}
		refs := ref.DenseParams()
		ps := m.DenseParams()
		for pi := range refs {
			for i := range refs[pi].Value {
				if refs[pi].Value[i] != ps[pi].Value[i] {
					return fmt.Errorf("trainer: rank %d %s diverged at %d", r, refs[pi].Name, i)
				}
			}
		}
	}
	return nil
}
