// Package trainer runs synchronous data-parallel language-model training
// over the simulated cluster, wiring together every substrate exactly the
// way §II-B describes the production workflow:
//
//   - each rank (goroutine) owns a full model replica and a private shard
//     of the training stream;
//   - dense RNN/projection gradients synchronize with a ring ALLREDUCE;
//   - input-embedding gradients go through a pluggable core.Exchanger —
//     the baseline ALLGATHER or the paper's unique exchange;
//   - output-embedding gradients do the same under sampled softmax, with
//     the per-rank sampler seeds assigned by a §III-B seeding strategy;
//     under full softmax (char LM) they ALLREDUCE like dense parameters;
//   - FP16 wire compression (§III-C) applies to all gradient payloads when
//     configured.
//
// Replicas start identical and receive identical global updates each step,
// so they stay bit-identical — the invariant §II-B states ("the model
// parameters on all GPUs are the same during the next training step"),
// which the tests assert.
package trainer

import (
	"fmt"
	"math"
	"time"

	"zipflm/internal/cluster"
	"zipflm/internal/collective"
	"zipflm/internal/core"
	"zipflm/internal/half"
	"zipflm/internal/metrics"
	"zipflm/internal/model"
	"zipflm/internal/optim"
	"zipflm/internal/sampling"
	"zipflm/internal/tensor"
)

// Config assembles one distributed training run.
type Config struct {
	// Model is the per-replica architecture.
	Model model.Config
	// Ranks is G, the simulated GPU count.
	Ranks int
	// BatchPerRank is sequences per rank per step (paper: 32 word LM,
	// 128 char LM).
	BatchPerRank int
	// SeqLen is tokens per sequence (paper: 20 word LM, 150 char LM).
	SeqLen int
	// LR is the epoch-0 learning rate for this run (experiments apply the
	// optim.Schedule cluster-size scaling before constructing the
	// trainer).
	LR float64
	// LRDecay multiplies the rate each epoch (§IV-B: "decay factor
	// ranging from 0.85 to 0.95"); 0 or 1 disables decay.
	LRDecay float64
	// Exchange is the embedding-gradient engine (§III-A).
	Exchange core.Exchanger
	// Wire, when non-nil, compresses gradient payloads to FP16 (§III-C).
	Wire *half.Scaler
	// SeedStrategy controls sampled-softmax seed sharing (§III-B).
	SeedStrategy sampling.Strategy
	// NewOptimizer builds one dense-parameter optimizer per rank (stateful
	// optimizers like Adam must not share state across replicas); nil
	// means SGD.
	NewOptimizer func() optim.Optimizer
	// NewSampler builds the sampled-softmax candidate source for a given
	// seed; nil means the paper's log-uniform sampler. The exact-unigram
	// alias sampler is the main alternative
	// (sampling.NewUnigramSampler).
	NewSampler func(vocab int, seed uint64) sampling.CandidateSampler
	// BaseSeed makes the whole run reproducible.
	BaseSeed uint64
	// DeviceCapacity bounds per-rank memory (0 = unlimited).
	DeviceCapacity int64
	// ClipNorm, when > 0, clips each dense gradient tensor's L2 norm.
	ClipNorm float64
}

// EvalPoint is one validation measurement.
type EvalPoint struct {
	// Epoch is the (possibly fractional) epoch position.
	Epoch float64
	// Loss is mean validation cross-entropy (nats).
	Loss float64
	// Perplexity is exp(Loss).
	Perplexity float64
}

// StepStats aggregates per-step exchange measurements across the run.
type StepStats struct {
	// Steps executed.
	Steps int
	// InputUniqueGlobal / OutputUniqueGlobal accumulate U_g sums for
	// averaging.
	InputUniqueGlobal  int64
	OutputUniqueGlobal int64
	// WireBytesPerRank is the max-over-ranks total collective traffic.
	WireBytesPerRank int64
	// PeakMemory is the max-over-ranks device peak (exchange scratch).
	PeakMemory int64
	// ComputeTime / SyncTime split the run's wall-clock between the
	// forward/backward phase and the synchronization phase — the same
	// decomposition perfmodel applies to the paper's hardware.
	ComputeTime time.Duration
	SyncTime    time.Duration
}

// AvgInputUnique returns the mean per-step global unique word count seen by
// the input-embedding exchange.
func (s StepStats) AvgInputUnique() float64 {
	if s.Steps == 0 {
		return 0
	}
	return float64(s.InputUniqueGlobal) / float64(s.Steps)
}

// AvgOutputUnique is the sampled-softmax counterpart.
func (s StepStats) AvgOutputUnique() float64 {
	if s.Steps == 0 {
		return 0
	}
	return float64(s.OutputUniqueGlobal) / float64(s.Steps)
}

// Result is what a training run returns.
type Result struct {
	// Evals are the validation points, in order.
	Evals []EvalPoint
	// Stats aggregates exchange costs.
	Stats StepStats
	// FinalLoss is the last validation loss.
	FinalLoss float64
}

// Trainer owns the replicas and shards.
type Trainer struct {
	cfg    Config
	clu    *cluster.Cluster
	comm   *collective.Comm
	models []*model.LM
	opts   []optim.Optimizer
	shards [][]int
	valid  []int
}

// New builds a trainer over the given train/validation token streams. The
// training stream is sharded contiguously across ranks.
func New(cfg Config, train, valid []int) (*Trainer, error) {
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("trainer: need at least one rank")
	}
	if cfg.BatchPerRank <= 0 || cfg.SeqLen <= 0 {
		return nil, fmt.Errorf("trainer: BatchPerRank and SeqLen must be positive")
	}
	if cfg.Exchange == nil {
		cfg.Exchange = core.UniqueExchange{}
	}
	if cfg.NewOptimizer == nil {
		cfg.NewOptimizer = func() optim.Optimizer { return optim.SGD{} }
	}
	perRank := len(train) / cfg.Ranks
	need := cfg.BatchPerRank*cfg.SeqLen + 1
	if cfg.Model.Stateful {
		// Each of the B contiguous lanes needs more than one window.
		need = cfg.BatchPerRank * (cfg.SeqLen + 2)
	}
	if perRank < need {
		return nil, fmt.Errorf("trainer: shard of %d tokens below one batch (%d)", perRank, need)
	}
	t := &Trainer{
		cfg:   cfg,
		clu:   cluster.New(cfg.Ranks, cfg.DeviceCapacity),
		comm:  collective.New(cfg.Ranks),
		valid: valid,
	}
	// Identical replicas: build rank 0, copy into the rest.
	t.models = make([]*model.LM, cfg.Ranks)
	t.opts = make([]optim.Optimizer, cfg.Ranks)
	mc := cfg.Model
	mc.Seed = cfg.BaseSeed
	for r := 0; r < cfg.Ranks; r++ {
		t.models[r] = model.NewLM(mc)
		if r > 0 {
			t.models[r].CopyWeightsFrom(t.models[0])
		}
		t.opts[r] = cfg.NewOptimizer()
	}
	t.shards = make([][]int, cfg.Ranks)
	for r := 0; r < cfg.Ranks; r++ {
		t.shards[r] = train[r*perRank : (r+1)*perRank]
	}
	return t, nil
}

// batchAt slices one (T×B) batch out of a shard at the given step index.
// In stateless mode sequence b of step s starts at an arbitrary wrapped
// offset; in stateful mode the shard is divided into B contiguous lanes and
// consecutive steps read consecutive windows of each lane, so the carried
// RNN state always continues the text it left off (standard truncated-BPTT
// feeding).
func (t *Trainer) batchAt(shard []int, step int) (inputs, targets [][]int) {
	b := t.cfg.BatchPerRank
	s := t.cfg.SeqLen
	usable := len(shard) - 1
	inputs = make([][]int, s)
	targets = make([][]int, s)
	for st := 0; st < s; st++ {
		inputs[st] = make([]int, b)
		targets[st] = make([]int, b)
	}
	if t.cfg.Model.Stateful {
		laneLen := usable / b
		for seq := 0; seq < b; seq++ {
			base := seq * laneLen
			off := base + (step*s)%(laneLen-s)
			for st := 0; st < s; st++ {
				inputs[st][seq] = shard[off+st]
				targets[st][seq] = shard[off+st+1]
			}
		}
		return inputs, targets
	}
	span := b * s
	for seq := 0; seq < b; seq++ {
		off := (step*span + seq*s) % (usable - s)
		for st := 0; st < s; st++ {
			inputs[st][seq] = shard[off+st]
			targets[st][seq] = shard[off+st+1]
		}
	}
	return inputs, targets
}

// StepsPerEpoch returns how many steps one pass over the training shards
// takes.
func (t *Trainer) StepsPerEpoch() int {
	span := t.cfg.BatchPerRank * t.cfg.SeqLen
	n := (len(t.shards[0]) - 1) / span
	if n < 1 {
		n = 1
	}
	return n
}

// Model returns rank r's replica (replicas are identical between steps).
func (t *Trainer) Model(r int) *model.LM { return t.models[r] }

// Comm exposes the communicator for traffic inspection.
func (t *Trainer) Comm() *collective.Comm { return t.comm }

// Cluster exposes the device accountants.
func (t *Trainer) Cluster() *cluster.Cluster { return t.clu }

// Run trains for the given number of epochs, validating evalsPerEpoch times
// per epoch (at least once, at each epoch end). It returns the evaluation
// trace and aggregated exchange statistics.
func (t *Trainer) Run(epochs int, evalsPerEpoch int) (Result, error) {
	if evalsPerEpoch < 1 {
		evalsPerEpoch = 1
	}
	stepsPerEpoch := t.StepsPerEpoch()
	evalEvery := stepsPerEpoch / evalsPerEpoch
	if evalEvery < 1 {
		evalEvery = 1
	}
	res := Result{}
	seeds := sampling.Assign(t.cfg.SeedStrategy, t.cfg.Ranks, t.cfg.BaseSeed+1)

	totalSteps := epochs * stepsPerEpoch
	lastEval := -evalEvery
	lr := t.cfg.LR
	for step := 0; step < totalSteps; step++ {
		if step > 0 && step%stepsPerEpoch == 0 && t.cfg.LRDecay > 0 && t.cfg.LRDecay != 1 {
			lr *= t.cfg.LRDecay
		}
		if t.cfg.Model.Stateful && step%stepsPerEpoch == 0 {
			// Epoch boundary: the lanes jump back to their starts, so
			// the carried state no longer matches the text.
			for _, m := range t.models {
				m.ResetRNNState()
			}
		}
		stats, err := t.trainStep(step, lr, seeds)
		if err != nil {
			return res, err
		}
		res.Stats.Steps++
		res.Stats.InputUniqueGlobal += int64(stats.inUnique)
		res.Stats.OutputUniqueGlobal += int64(stats.outUnique)
		res.Stats.ComputeTime += stats.computeTime
		res.Stats.SyncTime += stats.syncTime

		// Validate on the periodic schedule, plus once at the very end
		// unless a periodic eval just happened.
		if (step+1)%evalEvery == 0 || (step == totalSteps-1 && step-lastEval >= evalEvery/2) {
			lastEval = step
			loss := t.Validate()
			ep := EvalPoint{
				Epoch:      float64(step+1) / float64(stepsPerEpoch),
				Loss:       loss,
				Perplexity: metrics.Perplexity(loss),
			}
			res.Evals = append(res.Evals, ep)
			res.FinalLoss = loss
		}
	}
	res.Stats.WireBytesPerRank = t.comm.MaxStats().Total()
	res.Stats.PeakMemory = t.clu.MaxPeak()
	return res, nil
}

type stepStats struct {
	inUnique, outUnique   int
	computeTime, syncTime time.Duration
}

// trainStep executes one synchronous step across all ranks.
func (t *Trainer) trainStep(step int, lrNow float64, seeds []uint64) (stepStats, error) {
	g := t.cfg.Ranks
	results := make([]model.StepResult, g)
	samplers := make([]sampling.CandidateSampler, g)
	var agg stepStats

	// Phase 1 (parallel): forward/backward on every rank.
	phaseStart := time.Now()
	err := t.clu.Run(func(rank int, dev *cluster.Device) error {
		m := t.models[rank]
		m.ZeroGrads()
		var sampler sampling.CandidateSampler
		if t.cfg.Model.Sampled > 0 {
			// Re-seed per step so ranks sharing a §III-B seed draw the
			// same candidates every step while the stream still varies
			// across steps.
			stepSeed := seeds[rank] + uint64(step)*0x9e3779b9
			if t.cfg.NewSampler != nil {
				sampler = t.cfg.NewSampler(t.cfg.Model.Vocab, stepSeed)
			} else {
				sampler = sampling.NewSampler(t.cfg.Model.Vocab, stepSeed)
			}
		}
		samplers[rank] = sampler
		inputs, targets := t.batchAt(t.shards[rank], step)
		results[rank] = m.ForwardBackward(inputs, targets, sampler)
		return nil
	})
	if err != nil {
		return agg, err
	}
	agg.computeTime = time.Since(phaseStart)
	phaseStart = time.Now()

	// Phase 2 (parallel): synchronize and update.
	lr := float32(lrNow)
	invG := float32(1.0 / float64(g))
	errs := make([]error, g)
	inStats := make([]core.Stats, g)
	outStats := make([]core.Stats, g)
	_ = t.clu.Run(func(rank int, dev *cluster.Device) error {
		m := t.models[rank]
		ctx := &core.Ctx{Rank: rank, Comm: t.comm, Dev: dev, Wire: t.cfg.Wire}

		// Dense gradients: ring all-reduce then average.
		for _, p := range m.DenseParams() {
			t.comm.AllReduce(rank, p.Grad, t.cfg.Wire)
			tensor.Scale(p.Grad, invG)
			if t.cfg.ClipNorm > 0 {
				tensor.ClipL2(p.Grad, t.cfg.ClipNorm)
			}
		}

		// Input embedding: the §III exchange.
		upd, st, err := t.cfg.Exchange.Exchange(ctx, results[rank].InputGrad)
		if err != nil {
			errs[rank] = err
			return nil
		}
		inStats[rank] = st
		upd.Apply(m.InEmb, -lr*invG)

		// Output embedding: sampled softmax goes through the exchange;
		// full softmax all-reduces the dense gradient like an RNN param.
		if t.cfg.Model.Sampled > 0 {
			updOut, stOut, err := t.cfg.Exchange.Exchange(ctx, results[rank].OutputGrad)
			if err != nil {
				errs[rank] = err
				return nil
			}
			outStats[rank] = stOut
			updOut.Apply(m.OutEmb, -lr*invG)
		} else {
			t.comm.AllReduce(rank, results[rank].OutputGrad.Rows.Data, t.cfg.Wire)
			tensor.Scale(results[rank].OutputGrad.Rows.Data, invG)
			core.Update{Indices: results[rank].OutputGrad.Indices, Rows: results[rank].OutputGrad.Rows}.
				Apply(m.OutEmb, -lr)
		}
		return nil
	})
	for _, e := range errs {
		if e != nil {
			return agg, e
		}
	}

	// Dense optimizer step: every rank applies the identical averaged
	// gradient through its own optimizer instance, keeping replicas (and
	// any Adam state) bit-identical.
	for rank := 0; rank < g; rank++ {
		t.opts[rank].Step(t.models[rank].DenseParams(), lr)
	}

	agg.inUnique = inStats[0].UniqueGlobal
	agg.outUnique = outStats[0].UniqueGlobal
	agg.syncTime = time.Since(phaseStart)
	return agg, nil
}

// Validate computes mean validation loss (nats) on rank 0's replica.
func (t *Trainer) Validate() float64 {
	if len(t.valid) < 2 {
		return math.NaN()
	}
	lossSum, count := t.models[0].EvalLoss(t.valid, t.cfg.SeqLen)
	if count == 0 {
		return math.NaN()
	}
	return lossSum / float64(count)
}

// ReplicasInSync verifies every replica's parameters match rank 0 exactly —
// the §II-B synchronization invariant. Returns the first mismatch found.
func (t *Trainer) ReplicasInSync() error {
	ref := t.models[0]
	for r := 1; r < t.cfg.Ranks; r++ {
		m := t.models[r]
		for i := range ref.InEmb.Data {
			if m.InEmb.Data[i] != ref.InEmb.Data[i] {
				return fmt.Errorf("trainer: rank %d input embedding diverged at %d", r, i)
			}
		}
		for i := range ref.OutEmb.Data {
			if m.OutEmb.Data[i] != ref.OutEmb.Data[i] {
				return fmt.Errorf("trainer: rank %d output embedding diverged at %d", r, i)
			}
		}
		refs := ref.DenseParams()
		ps := m.DenseParams()
		for pi := range refs {
			for i := range refs[pi].Value {
				if refs[pi].Value[i] != ps[pi].Value[i] {
					return fmt.Errorf("trainer: rank %d %s diverged at %d", r, refs[pi].Name, i)
				}
			}
		}
	}
	return nil
}
