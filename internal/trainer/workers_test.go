package trainer

import (
	"testing"

	"zipflm/internal/core"
	"zipflm/internal/optim"
)

// TestWorkersBitIdentical is the trainer-level statement of the backend
// contract: a run whose replicas compute through the goroutine-tiled tensor
// backend reaches exactly the same weights and validation loss as the
// serial run — Config.Workers is a speed knob, never a trajectory knob.
func TestWorkersBitIdentical(t *testing.T) {
	train, valid := smallData(60, 4000, 13)
	run := func(workers int, sampled int, adam bool) (*Trainer, float64) {
		cfg := smallConfig(2, core.UniqueExchange{})
		cfg.Workers = workers
		cfg.Model.Sampled = sampled
		if adam {
			cfg.NewOptimizer = func() optim.Optimizer { return optim.NewAdam(1e-5) }
		}
		tr, err := New(cfg, train, valid)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Steps(12); err != nil {
			t.Fatal(err)
		}
		return tr, tr.Validate()
	}
	for _, mode := range []struct {
		name    string
		sampled int
		adam    bool
	}{{"full-sgd", 0, false}, {"sampled-adam", 12, true}} {
		t.Run(mode.name, func(t *testing.T) {
			serial, lossSerial := run(1, mode.sampled, mode.adam)
			for _, workers := range []int{2, 4} {
				tiled, lossTiled := run(workers, mode.sampled, mode.adam)
				if lossSerial != lossTiled {
					t.Fatalf("workers=%d: validation loss %v != serial %v", workers, lossTiled, lossSerial)
				}
				requireIdenticalModels(t, mode.name, serial.Model(0), tiled.Model(0))
				if err := tiled.ReplicasInSync(); err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
			}
		})
	}
}

// TestWorkersResumeBitIdentical crosses the backend knob with the resume
// contract: a checkpoint written by a serial run, resumed with Workers=4
// (and vice versa), must continue exactly the serial trajectory — the
// backend is a runtime property, deliberately absent from checkpoints.
func TestWorkersResumeBitIdentical(t *testing.T) {
	train, valid := smallData(60, 800, 14)
	const leg = 8

	full, err := New(smallConfig(2, core.UniqueExchange{}), train, valid)
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Steps(2 * leg); err != nil {
		t.Fatal(err)
	}

	for _, legs := range []struct {
		name           string
		first, resumed int
	}{{"serial-then-tiled", 1, 4}, {"tiled-then-serial", 4, 1}} {
		t.Run(legs.name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := smallConfig(2, core.UniqueExchange{})
			cfg.CheckpointEvery = leg
			cfg.CheckpointDir = dir
			cfg.Workers = legs.first
			first, err := New(cfg, train, valid)
			if err != nil {
				t.Fatal(err)
			}
			if err := first.Steps(leg); err != nil {
				t.Fatal(err)
			}

			cfg.Workers = legs.resumed
			resumed, err := Resume(cfg, dir, train, valid)
			if err != nil {
				t.Fatal(err)
			}
			if err := resumed.Steps(leg); err != nil {
				t.Fatal(err)
			}
			requireIdenticalModels(t, legs.name, full.Model(0), resumed.Model(0))
			if lf, lr := full.Validate(), resumed.Validate(); lf != lr {
				t.Fatalf("validation loss differs: serial %v vs %s %v", lf, legs.name, lr)
			}
		})
	}
}
