package trainer

import (
	"math"
	"testing"

	"zipflm/internal/collective"
	"zipflm/internal/core"
	"zipflm/internal/corpus"
	"zipflm/internal/half"
	"zipflm/internal/model"
	"zipflm/internal/optim"
	"zipflm/internal/sampling"
)

// smallData builds a Zipfian train/valid pair.
func smallData(vocab, n int, seed uint64) (train, valid []int) {
	g := corpus.NewGenerator(corpus.GeneratorConfig{
		VocabSize:    vocab - 1, // generator emits [1, vocab-1]; id 0 = <unk>
		ZipfExponent: 1.2,
		Seed:         seed,
	})
	stream := g.Stream(n)
	return corpus.Split(stream, 10, 50, seed)
}

func smallConfig(ranks int, ex core.Exchanger) Config {
	return Config{
		Model: model.Config{
			Vocab: 60, Dim: 8, Hidden: 10, RNN: model.KindLSTM,
		},
		Ranks:        ranks,
		BatchPerRank: 2,
		SeqLen:       6,
		LR:           0.3,
		Exchange:     ex,
		SeedStrategy: sampling.AllDifferent,
		BaseSeed:     7,
	}
}

func TestTrainingConvergesLSTM(t *testing.T) {
	train, valid := smallData(60, 8000, 1)
	tr, err := New(smallConfig(2, core.UniqueExchange{}), train, valid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evals) < 2 {
		t.Fatalf("got %d evals", len(res.Evals))
	}
	first := res.Evals[0].Loss
	last := res.FinalLoss
	if !(last < first) {
		t.Errorf("validation loss did not improve: %v -> %v", first, last)
	}
	if math.IsNaN(last) || math.IsInf(last, 0) {
		t.Errorf("final loss is %v", last)
	}
	// Perplexity consistency.
	if math.Abs(res.Evals[0].Perplexity-math.Exp(first)) > 1e-9 {
		t.Error("perplexity != exp(loss)")
	}
}

func TestReplicasStayInSync(t *testing.T) {
	train, valid := smallData(60, 6000, 2)
	for _, ex := range []core.Exchanger{core.UniqueExchange{}, core.BaselineAllGather{}} {
		tr, err := New(smallConfig(3, ex), train, valid)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Run(1, 1); err != nil {
			t.Fatal(err)
		}
		if err := tr.ReplicasInSync(); err != nil {
			t.Errorf("%s: %v", ex.Name(), err)
		}
	}
}

// TestEnginesTrainIdentically is the end-to-end version of the paper's
// equivalence claim: a full training run under the unique exchange reaches
// (numerically almost) the same weights as under the baseline exchange.
func TestEnginesTrainIdentically(t *testing.T) {
	train, valid := smallData(60, 6000, 3)
	run := func(ex core.Exchanger) *model.LM {
		tr, err := New(smallConfig(2, ex), train, valid)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Run(1, 1); err != nil {
			t.Fatal(err)
		}
		return tr.Model(0)
	}
	a := run(core.BaselineAllGather{})
	b := run(core.UniqueExchange{})
	var maxDiff float64
	for i := range a.InEmb.Data {
		d := math.Abs(float64(a.InEmb.Data[i] - b.InEmb.Data[i]))
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-3 {
		t.Errorf("input embeddings diverged by %v between engines", maxDiff)
	}
}

func TestSampledSoftmaxTraining(t *testing.T) {
	train, valid := smallData(60, 8000, 4)
	cfg := smallConfig(2, core.UniqueExchange{})
	cfg.Model.Sampled = 12
	cfg.SeedStrategy = sampling.ZipfFreq
	tr, err := New(cfg, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss >= res.Evals[0].Loss {
		t.Errorf("sampled-softmax training did not improve: %v -> %v",
			res.Evals[0].Loss, res.FinalLoss)
	}
	if err := tr.ReplicasInSync(); err != nil {
		t.Error(err)
	}
	if res.Stats.AvgOutputUnique() <= 0 {
		t.Error("sampled run must record output-embedding unique counts")
	}
}

// TestSeedStrategyControlsOutputUnique: AllSame must see far fewer unique
// output-embedding words than AllDifferent — the §III-B mechanism measured
// end to end through real training steps.
func TestSeedStrategyControlsOutputUnique(t *testing.T) {
	train, valid := smallData(200, 9000, 5)
	uniqueFor := func(s sampling.Strategy) float64 {
		cfg := smallConfig(4, core.UniqueExchange{})
		cfg.Model.Vocab = 200
		cfg.Model.Sampled = 24
		cfg.SeedStrategy = s
		tr, err := New(cfg, train, valid)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tr.Run(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.AvgOutputUnique()
	}
	same := uniqueFor(sampling.AllSame)
	diff := uniqueFor(sampling.AllDifferent)
	if !(same < diff) {
		t.Errorf("AllSame unique (%v) not below AllDifferent (%v)", same, diff)
	}
}

func TestRHNFullSoftmaxTraining(t *testing.T) {
	train, valid := smallData(40, 6000, 6)
	cfg := Config{
		Model: model.Config{
			Vocab: 40, Dim: 6, Hidden: 8, RNN: model.KindRHN, RHNDepth: 2,
		},
		Ranks:        2,
		BatchPerRank: 2,
		SeqLen:       5,
		LR:           0.02,
		NewOptimizer: func() optim.Optimizer { return optim.NewAdam(1e-5) },
		BaseSeed:     8,
	}
	tr, err := New(cfg, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss >= res.Evals[0].Loss {
		t.Errorf("char-style RHN training did not improve: %v -> %v",
			res.Evals[0].Loss, res.FinalLoss)
	}
	if err := tr.ReplicasInSync(); err != nil {
		t.Error(err)
	}
}

func TestFP16WireTrainingCloseToFP32(t *testing.T) {
	train, valid := smallData(60, 6000, 9)
	run := func(wire collective.Wire) float64 {
		cfg := smallConfig(2, core.UniqueExchange{})
		cfg.Wire = wire
		tr, err := New(cfg, train, valid)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tr.Run(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalLoss
	}
	fp32 := run(nil)
	fp16 := run(half.NewScaler(1024))
	// §V-A: "the perplexity … with and without compression are 84.12 and
	// 84.68" — compression-scaling must track FP32 closely.
	if math.Abs(fp16-fp32) > 0.15*math.Abs(fp32) {
		t.Errorf("FP16 wire diverged: %v vs %v", fp16, fp32)
	}
}

func TestTrainerRejectsBadConfig(t *testing.T) {
	train, valid := smallData(60, 4000, 10)
	bad := smallConfig(0, nil)
	if _, err := New(bad, train, valid); err == nil {
		t.Error("zero ranks must error")
	}
	small := smallConfig(2, nil)
	if _, err := New(small, train[:10], valid); err == nil {
		t.Error("insufficient shard must error")
	}
	small2 := smallConfig(2, nil)
	small2.SeqLen = 0
	if _, err := New(small2, train, valid); err == nil {
		t.Error("zero SeqLen must error")
	}
}

func TestStepsPerEpoch(t *testing.T) {
	train, valid := smallData(60, 5000, 11)
	cfg := smallConfig(2, nil)
	tr, err := New(cfg, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	span := cfg.BatchPerRank * cfg.SeqLen
	want := (len(train)/2 - 1) / span
	if got := tr.StepsPerEpoch(); got != want {
		t.Errorf("StepsPerEpoch = %d, want %d", got, want)
	}
}

func TestWireBytesTracked(t *testing.T) {
	train, valid := smallData(60, 5000, 12)
	tr, err := New(smallConfig(2, core.UniqueExchange{}), train, valid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.WireBytesPerRank <= 0 {
		t.Error("wire bytes not tracked")
	}
	if res.Stats.AvgInputUnique() <= 0 {
		t.Error("input unique counts not tracked")
	}
}
