package compress

import (
	"fmt"
	"math"
	"sort"

	"zipflm/internal/collective"
	"zipflm/internal/half"
)

// Engine is one rank's gradient-compression state machine. It owns the
// per-tensor error-feedback residuals (and momentum-correction velocities)
// that carry unsent gradient mass across steps, the rank's quantizer
// stream, and the encode scratch — everything that must survive a
// checkpoint for a resumed run to replay the compressed trajectory
// bit-identically. One Engine belongs to exactly one rank goroutine.
type Engine struct {
	cfg Config
	// base is the uncompressed-tensor wire (the run's FP32/FP16 setting);
	// scaler is base when it is the FP16 compression scaler, which top-k
	// payloads then also apply to their values — compression composes with
	// the §III-C wire rather than replacing it.
	base   collective.Wire
	scaler *half.Scaler
	q8     *Quant8
	dec    TopKDecoder

	carries map[string]*carry
	idx     []int
	vals    []float32
	payload []byte
}

// carry is one tensor's cross-step compression state.
type carry struct {
	// resid accumulates gradient mass not yet sent (error feedback).
	resid []float32
	// mom is the DGC momentum-correction velocity (nil when Momentum 0).
	mom []float32
}

// NewEngine builds rank's engine. cfg must be pre-normalized by
// Config.Validate; base is the run's wire for uncompressed tensors (nil
// FP32 or the FP16 scaler). The quantizer stream is derived from cfg.Seed
// and the rank so streams are independent per rank yet reproducible.
func NewEngine(cfg Config, base collective.Wire, rank int) *Engine {
	e := &Engine{cfg: cfg, base: base, carries: make(map[string]*carry)}
	if s, ok := base.(*half.Scaler); ok {
		e.scaler = s
	}
	if cfg.Method == MethodQuant8 {
		e.q8 = NewQuant8(cfg.ChunkElems, cfg.Stochastic, cfg.Seed+0x9e3779b97f4a7c15*uint64(rank+1))
	}
	return e
}

// Config returns the normalized policy the engine runs.
func (e *Engine) Config() Config { return e.cfg }

// carryFor returns (building on first use) the named tensor's state.
func (e *Engine) carryFor(name string, n int) (*carry, error) {
	c, ok := e.carries[name]
	if !ok {
		c = &carry{resid: make([]float32, n)}
		if e.cfg.Momentum > 0 {
			c.mom = make([]float32, n)
		}
		e.carries[name] = c
	}
	if len(c.resid) != n {
		return nil, fmt.Errorf("compress: tensor %q changed size %d → %d", name, len(c.resid), n)
	}
	return c, nil
}

// AllReduce synchronizes one named dense gradient across ranks through the
// policy's compressor: uncompressed tensors ride the base wire's ring,
// Quant8 tensors ride the ring with the 8-bit wire, and top-k tensors go
// through the compressed all-reduce with this rank's error-feedback
// residual folded in. On return grad holds the identical global sum on
// every rank (of the compressed contributions, for lossy methods).
func (e *Engine) AllReduce(comm *collective.Comm, rank int, name string, grad []float32) error {
	switch e.cfg.methodFor(len(grad)) {
	case MethodNone:
		comm.AllReduce(rank, grad, e.base)
		return nil
	case MethodQuant8:
		comm.AllReduce(rank, grad, e.q8)
		return nil
	}

	// MethodTopK: momentum-corrected error-feedback accumulation (DGC).
	// The velocity u gathers the gradient with momentum; the residual v
	// gathers u; the k largest-magnitude residual entries are sent and
	// subtracted (post-wire values, so the carry is exact); a sent
	// coordinate clears its velocity so it re-accumulates from zero.
	c, err := e.carryFor(name, len(grad))
	if err != nil {
		return err
	}
	if m := float32(e.cfg.Momentum); m > 0 {
		for i, g := range grad {
			c.mom[i] = m*c.mom[i] + g
			c.resid[i] += c.mom[i]
		}
	} else {
		for i, g := range grad {
			c.resid[i] += g
		}
	}

	ratio := e.cfg.ratioFor(name)
	k := int(math.Ceil(ratio * float64(len(grad)))) // ⌈Ratio·n⌉, as documented
	if k < 1 {
		k = 1
	}
	if cap(e.idx) < k {
		e.idx = make([]int, k)
		e.vals = make([]float32, k)
	}
	idx := selectTopK(c.resid, k, e.idx[:0])
	vals := e.vals[:len(idx)]
	for j, i := range idx {
		vals[j] = c.resid[i]
	}
	// EncodeTopK rewrites vals with the post-wire (FP16-rounded) values
	// when the scaler applies; subtract exactly what the peers will add.
	e.payload = EncodeTopK(e.payload[:0], len(grad), idx, vals, e.scaler)
	for j, i := range idx {
		c.resid[i] -= vals[j]
		if c.mom != nil {
			c.mom[i] = 0
		}
	}
	return comm.AllReduceCompressed(rank, grad, e.payload, e.dec)
}

// TensorState is one tensor's serialized carry, named so restore can
// rebind it.
type TensorState struct {
	Name     string
	Residual []float32
	Momentum []float32
}

// EngineState is one rank's full compression state for checkpoints:
// residuals and velocities sorted by tensor name (deterministic bytes — the
// ckpt framing encodes no maps), plus the quantizer RNG stream (all zeros
// when the method has none).
type EngineState struct {
	Q8RNG   [4]uint64
	Tensors []TensorState
}

// Snapshot captures the engine's carry-over. The capture copies, so later
// steps do not mutate it.
func (e *Engine) Snapshot() EngineState {
	st := EngineState{}
	if e.q8 != nil {
		st.Q8RNG = e.q8.State()
	}
	names := make([]string, 0, len(e.carries))
	for n := range e.carries {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c := e.carries[n]
		ts := TensorState{Name: n, Residual: append([]float32(nil), c.resid...)}
		if c.mom != nil {
			ts.Momentum = append([]float32(nil), c.mom...)
		}
		st.Tensors = append(st.Tensors, ts)
	}
	return st
}

// Restore reinstates a state captured by Snapshot (possibly in a previous
// process). The engine's configuration must match the checkpointing run's.
func (e *Engine) Restore(st EngineState) error {
	if e.q8 != nil {
		if st.Q8RNG == ([4]uint64{}) {
			return fmt.Errorf("compress: checkpoint carries no quantizer stream but the engine quantizes")
		}
		e.q8.SetState(st.Q8RNG)
	}
	clear(e.carries)
	for _, ts := range st.Tensors {
		c := &carry{resid: append([]float32(nil), ts.Residual...)}
		if ts.Momentum != nil {
			if e.cfg.Momentum <= 0 {
				return fmt.Errorf("compress: checkpoint carries momentum state for %q but momentum is off", ts.Name)
			}
			c.mom = append([]float32(nil), ts.Momentum...)
		} else if e.cfg.Momentum > 0 {
			c.mom = make([]float32, len(ts.Residual))
		}
		e.carries[ts.Name] = c
	}
	return nil
}
