package compress

import (
	"math"
	"sort"
	"testing"

	"zipflm/internal/half"
	"zipflm/internal/rng"
)

// randVec fills a deterministic test vector with mixed-magnitude values.
func randVec(n int, seed uint64) []float32 {
	r := rng.New(seed)
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(r.NormFloat64()) * float32(math.Pow(10, float64(r.Intn(4))-2))
	}
	return v
}

func TestSelectTopKMatchesSortPrefix(t *testing.T) {
	for _, n := range []int{1, 7, 64, 1000} {
		for _, k := range []int{1, 3, 64, 1500} {
			v := randVec(n, uint64(n*1000+k))
			// Inject magnitude ties so the tie-break is exercised.
			if n > 10 {
				v[3], v[7] = 0.5, -0.5
			}
			got := selectTopK(v, k, make([]int, 0, k))

			// Reference: (|v| desc, index asc) sort prefix.
			ref := make([]int, n)
			for i := range ref {
				ref[i] = i
			}
			sort.SliceStable(ref, func(a, b int) bool {
				ma, mb := math.Abs(float64(v[ref[a]])), math.Abs(float64(v[ref[b]]))
				if ma != mb {
					return ma > mb
				}
				return ref[a] < ref[b]
			})
			m := k
			if m > n {
				m = n
			}
			want := append([]int(nil), ref[:m]...)
			sort.Ints(want)
			if len(got) != len(want) {
				t.Fatalf("n=%d k=%d: selected %d, want %d", n, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d k=%d: selection %v != sort prefix %v", n, k, got, want)
				}
			}
		}
	}
}

func TestTopKPayloadRoundTrip(t *testing.T) {
	n := 500
	v := randVec(n, 3)
	idx := selectTopK(v, 50, make([]int, 0, 50))
	vals := make([]float32, len(idx))
	for j, i := range idx {
		vals[j] = v[i]
	}

	for _, scaler := range []*half.Scaler{nil, half.NewScaler(256)} {
		sent := append([]float32(nil), vals...)
		payload := EncodeTopK(nil, n, idx, sent, scaler)
		if want := TopKPayloadBytes(len(idx), scaler != nil); len(payload) != want {
			t.Fatalf("payload %d bytes, want %d", len(payload), want)
		}
		acc := make([]float32, n)
		if err := (TopKDecoder{}).DecodeAdd(acc, payload); err != nil {
			t.Fatal(err)
		}
		for j, i := range idx {
			// The decoder must add exactly the post-wire value EncodeTopK
			// reported back in sent — that equality is what makes the
			// error-feedback residual exact.
			if acc[i] != sent[j] {
				t.Fatalf("scaler=%v: decoded %v at %d, encoder reported %v", scaler, acc[i], i, sent[j])
			}
		}
		// Non-selected positions stay untouched.
		sel := make(map[int]bool, len(idx))
		for _, i := range idx {
			sel[i] = true
		}
		for i, a := range acc {
			if !sel[i] && a != 0 {
				t.Fatalf("position %d not selected but decoded to %v", i, a)
			}
		}
	}
}

// TestTopKFP16Saturates: error feedback can grow residual magnitudes past
// the FP16 range; the encoder must saturate to the finite max (like
// Scaler.RoundTrip) instead of putting Inf on the wire, which would poison
// every replica's gradient and leave -Inf in the residual carry forever.
func TestTopKFP16Saturates(t *testing.T) {
	scaler := half.NewScaler(512)
	vals := []float32{1e6, -1e6} // *512 overflows FP16 by far
	payload := EncodeTopK(nil, 4, []int{1, 3}, vals, scaler)
	wantMag := float32(half.MaxFinite) / 512
	if vals[0] != wantMag || vals[1] != -wantMag {
		t.Fatalf("encoder reported %v, want saturated ±%v", vals, wantMag)
	}
	acc := make([]float32, 4)
	if err := (TopKDecoder{}).DecodeAdd(acc, payload); err != nil {
		t.Fatal(err)
	}
	for i, v := range acc {
		if math.IsInf(float64(v), 0) || math.IsNaN(float64(v)) {
			t.Fatalf("Inf/NaN escaped to position %d: %v", i, acc)
		}
	}
	if acc[1] != wantMag || acc[3] != -wantMag {
		t.Fatalf("decoded %v, want saturated ±%v at 1 and 3", acc, wantMag)
	}
}

func TestTopKDecodeAddEmptyPayloadIsZero(t *testing.T) {
	acc := []float32{1, 2, 3}
	if err := (TopKDecoder{}).DecodeAdd(acc, nil); err != nil {
		t.Fatal(err)
	}
	if acc[0] != 1 || acc[1] != 2 || acc[2] != 3 {
		t.Fatalf("empty payload mutated acc: %v", acc)
	}
}

func TestTopKDecodeRejectsMalformed(t *testing.T) {
	n := 64
	v := randVec(n, 4)
	idx := selectTopK(v, 8, make([]int, 0, 8))
	vals := make([]float32, len(idx))
	for j, i := range idx {
		vals[j] = v[i]
	}
	good := EncodeTopK(nil, n, idx, vals, nil)
	acc := make([]float32, n)

	cases := map[string][]byte{
		"short header": good[:5],
		"truncated":    good[:len(good)-3],
		"padded":       append(append([]byte(nil), good...), 0),
	}
	// Wrong tensor length.
	wrongN := append([]byte(nil), good...)
	wrongN[5] = byte(n + 1)
	cases["wrong length"] = wrongN
	// Out-of-range index.
	badIdx := append([]byte(nil), good...)
	badIdx[topKHeaderBytes] = 0xff
	badIdx[topKHeaderBytes+1] = 0xff
	cases["index out of range"] = badIdx
	// Duplicate (non-ascending) indices.
	dup := EncodeTopK(nil, n, []int{5, 5}, []float32{1, 2}, nil)
	cases["non-ascending indices"] = dup

	for name, p := range cases {
		if err := (TopKDecoder{}).DecodeAdd(acc, p); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestQuant8Deterministic(t *testing.T) {
	for _, stochastic := range []bool{false, true} {
		x1 := randVec(2000, 9)
		x2 := append([]float32(nil), x1...)
		q1 := NewQuant8(256, stochastic, 42)
		q2 := NewQuant8(256, stochastic, 42)
		q1.RoundTrip(x1)
		q2.RoundTrip(x2)
		for i := range x1 {
			if x1[i] != x2[i] {
				t.Fatalf("stochastic=%v: same seed diverges at %d: %v vs %v", stochastic, i, x1[i], x2[i])
			}
		}
	}
}

func TestQuant8ErrorBounded(t *testing.T) {
	for _, stochastic := range []bool{false, true} {
		x := randVec(1024, 11)
		orig := append([]float32(nil), x...)
		q := NewQuant8(256, stochastic, 1)
		q.RoundTrip(x)
		for lo := 0; lo < len(x); lo += q.ChunkElems {
			hi := min(lo+q.ChunkElems, len(x))
			var maxAbs float64
			for _, v := range orig[lo:hi] {
				if a := math.Abs(float64(v)); a > maxAbs {
					maxAbs = a
				}
			}
			step := maxAbs / 127
			for i := lo; i < hi; i++ {
				if err := math.Abs(float64(x[i] - orig[i])); err > step*1.001 {
					t.Fatalf("stochastic=%v: element %d moved %v, quantization step is %v", stochastic, i, err, step)
				}
			}
		}
	}
}

// TestQuant8SanitizesNonFinite: an overflowed (Inf) or NaN gradient element
// must not ship on the ring — it would sum into every replica and poison
// training — so the quantizer clips it the way the FP16 wire and the top-k
// encoder do.
func TestQuant8SanitizesNonFinite(t *testing.T) {
	x := []float32{1, float32(math.Inf(1)), -2, float32(math.Inf(-1)), float32(math.NaN()), 3}
	NewQuant8(256, false, 1).RoundTrip(x)
	for i, v := range x {
		if math.IsInf(float64(v), 0) || math.IsNaN(float64(v)) {
			t.Fatalf("non-finite survived the wire at %d: %v", i, x)
		}
	}
	if x[1] <= 0 || x[3] >= 0 {
		t.Fatalf("Inf elements lost their sign: %v", x)
	}
	if x[4] != 0 {
		t.Fatalf("NaN quantized to %v, want 0", x[4])
	}
}

func TestQuant8ZeroChunkUntouched(t *testing.T) {
	x := make([]float32, 300)
	NewQuant8(256, true, 5).RoundTrip(x)
	for i, v := range x {
		if v != 0 {
			t.Fatalf("zero input perturbed at %d: %v", i, v)
		}
	}
}

// TestQuant8EncodeDecodeMatchesRoundTrip: the split halves are the same
// quantizer — Encode then Decode lands on RoundTrip's exact bits, including
// the degenerate all-zero chunk (scale 0 decodes to zeros, which is what the
// fused passthrough leaves behind). Nearest mode only: the split is for
// encode-once/decode-many weight storage, which is deterministic by contract.
func TestQuant8EncodeDecodeMatchesRoundTrip(t *testing.T) {
	x := randVec(1000, 13)
	// Plant an all-zero chunk and some non-finite elements so the sanitize
	// and passthrough paths are exercised too.
	for i := 512; i < 768; i++ {
		x[i] = 0
	}
	x[3] = float32(math.Inf(1))
	x[900] = float32(math.NaN())
	fused := append([]float32(nil), x...)

	q := NewQuant8(256, false, 0)
	codes := make([]int8, len(x))
	scales := make([]float32, q.Chunks(len(x)))
	q.Encode(x, codes, scales)
	split := make([]float32, len(x))
	q.Decode(split, codes, scales)

	NewQuant8(256, false, 0).RoundTrip(fused)
	for i := range fused {
		if math.Float32bits(split[i]) != math.Float32bits(fused[i]) {
			t.Fatalf("split decode differs from RoundTrip at %d: %v vs %v", i, split[i], fused[i])
		}
	}
	if scales[2] != 0 {
		t.Fatalf("all-zero chunk scale = %v, want 0", scales[2])
	}
}

func TestQuant8WireBytes(t *testing.T) {
	q := NewQuant8(256, false, 0)
	if got := q.WireBytes(256); got != 256+4 {
		t.Fatalf("one chunk: %d bytes, want %d", got, 260)
	}
	if got := q.WireBytes(257); got != 257+8 {
		t.Fatalf("two chunks: %d bytes, want %d", got, 265)
	}
	if got := q.WireBytes(0); got != 0 {
		t.Fatalf("empty: %d bytes, want 0", got)
	}
	// Strictly below FP16 (the wire it competes with) for whole chunks.
	if q.WireBytes(4096) >= 2*4096 {
		t.Fatalf("q8 %d bytes not below fp16 %d", q.WireBytes(4096), 2*4096)
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Method: MethodTopK, Ratio: 0.1}
	cc, err := good.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if cc.MinElems != DefaultMinElems || cc.ChunkElems != DefaultChunkElems {
		t.Fatalf("defaults not filled: %+v", cc)
	}
	bad := []Config{
		{Method: Method(99)},
		{Method: MethodTopK, Ratio: 0},
		{Method: MethodTopK, Ratio: 1.5},
		{Method: MethodTopK, Ratio: 0.1, EmbedRatio: 2},
		{Method: MethodTopK, Ratio: 0.1, Momentum: 1},
		{Method: MethodQuant8, Momentum: -0.1},
	}
	for _, c := range bad {
		if _, err := c.Validate(); err == nil {
			t.Errorf("config %+v validated", c)
		}
	}
}

func TestZipfTune(t *testing.T) {
	z := rng.NewZipf(rng.New(3), 500, 1.2)
	tokens := make([]int, 50_000)
	for i := range tokens {
		tokens[i] = z.Next()
	}
	cfg := Config{Method: MethodTopK, Ratio: 0.05}
	if err := cfg.ZipfTune(tokens, 500, 2048); err != nil {
		t.Fatal(err)
	}
	if cfg.EmbedRatio <= 0 || cfg.EmbedRatio > 1 {
		t.Fatalf("EmbedRatio %v outside (0, 1]", cfg.EmbedRatio)
	}
	if cfg.RankAlpha >= 0 {
		t.Fatalf("rank-frequency alpha %v, want negative (Zipf)", cfg.RankAlpha)
	}
	// A Zipfian batch touches far fewer unique words than tokens: the
	// tuned embedding ratio must sit well below the naive 2048/500 > 1.
	if cfg.EmbedRatio > 0.9 {
		t.Fatalf("EmbedRatio %v suspiciously dense for a Zipfian stream", cfg.EmbedRatio)
	}

	// Degenerate corpora leave the config untouched and error.
	for _, tok := range [][]int{nil, {7, 7, 7, 7}} {
		c := Config{Method: MethodTopK, Ratio: 0.05}
		if err := c.ZipfTune(tok, 500, 2048); err == nil {
			t.Errorf("ZipfTune(%v) fitted a degenerate corpus", tok)
		}
		if c.EmbedRatio != 0 {
			t.Errorf("degenerate tune mutated config: %+v", c)
		}
	}
}
