package compress

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"zipflm/internal/half"
)

// Top-k payload wire format (little endian):
//
//	byte  0       flags (bit 0: values are FP16)
//	bytes 1..4    F, the FP16 compression-scaling factor (FP32; 0 when FP32)
//	bytes 5..8    n, the uncompressed tensor length (u32)
//	bytes 9..12   k, the selected entry count (u32)
//	k × u32       indices, strictly ascending
//	k × f32|f16   values
//
// The format is self-describing, so the decoder needs no out-of-band
// configuration and one Decoder instance serves every rank — the property
// the compressed all-reduce's replica-identity argument rests on.

const topKHeaderBytes = 1 + 4 + 4 + 4

const topKFlagFP16 = 1 << 0

// TopKPayloadBytes returns the wire size of a top-k payload carrying k
// entries (fp16 halves the value bytes).
func TopKPayloadBytes(k int, fp16 bool) int {
	vb := 4
	if fp16 {
		vb = 2
	}
	return topKHeaderBytes + k*(4+vb)
}

// EncodeTopK appends one payload to dst and returns the extended slice.
// idx must be ascending positions into the original n-element tensor; vals
// aligns with idx. With a non-nil scaler the values travel as
// compression-scaled FP16, and vals is rewritten in place with the decoded
// (post-wire) values so the caller's error-feedback residual can subtract
// exactly what the peers will add.
func EncodeTopK(dst []byte, n int, idx []int, vals []float32, scaler *half.Scaler) []byte {
	if len(idx) != len(vals) {
		panic(fmt.Sprintf("compress: %d indices but %d values", len(idx), len(vals)))
	}
	var flags byte
	var factor float32
	if scaler != nil {
		flags |= topKFlagFP16
		factor = scaler.Factor
	}
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(factor))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(idx)))
	for _, i := range idx {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(i))
	}
	if scaler != nil {
		inv := 1 / factor
		for j, v := range vals {
			h := half.FromFloat32(v * factor)
			if h.IsInf() {
				// Saturate exactly like Scaler.RoundTrip: error feedback
				// can accumulate residual magnitudes past the FP16 range,
				// and an Inf on the wire would poison every replica's
				// gradient (and the residual carry) irrecoverably.
				h = half.MaxFiniteWithSign(h)
			}
			dst = binary.LittleEndian.AppendUint16(dst, uint16(h))
			vals[j] = h.ToFloat32() * inv
		}
	} else {
		for _, v := range vals {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
		}
	}
	return dst
}

// TopKDecoder decodes top-k payloads; it implements collective.Decoder. It
// is stateless, so one instance is safely shared by every rank.
type TopKDecoder struct{}

// DecodeAdd implements collective.Decoder: acc[idx[j]] += vals[j] for every
// carried entry. An empty payload is a zero contribution. Malformed
// payloads — short buffers, lengths that disagree with the tensor,
// out-of-range or non-ascending indices — return errors rather than
// corrupting acc beyond the entries already applied.
func (TopKDecoder) DecodeAdd(acc []float32, payload []byte) error {
	if len(payload) == 0 {
		return nil
	}
	if len(payload) < topKHeaderBytes {
		return fmt.Errorf("compress: top-k payload of %d bytes is shorter than its header", len(payload))
	}
	flags := payload[0]
	factor := math.Float32frombits(binary.LittleEndian.Uint32(payload[1:5]))
	n := int(binary.LittleEndian.Uint32(payload[5:9]))
	k := int(binary.LittleEndian.Uint32(payload[9:13]))
	if n != len(acc) {
		return fmt.Errorf("compress: payload for a %d-element tensor, accumulator has %d", n, len(acc))
	}
	fp16 := flags&topKFlagFP16 != 0
	if want := TopKPayloadBytes(k, fp16); len(payload) != want {
		return fmt.Errorf("compress: top-k payload carries %d bytes, header implies %d", len(payload), want)
	}
	if fp16 && (factor <= 0 || math.IsInf(float64(factor), 0) || math.IsNaN(float64(factor))) {
		return fmt.Errorf("compress: invalid FP16 scale factor %v", factor)
	}
	idxBytes := payload[topKHeaderBytes : topKHeaderBytes+4*k]
	valBytes := payload[topKHeaderBytes+4*k:]
	prev := -1
	var inv float32
	if fp16 {
		inv = 1 / factor
	}
	for j := 0; j < k; j++ {
		i := int(binary.LittleEndian.Uint32(idxBytes[4*j:]))
		if i <= prev || i >= n {
			return fmt.Errorf("compress: top-k index %d out of order or range (prev %d, n %d)", i, prev, n)
		}
		prev = i
		if fp16 {
			h := half.Float16(binary.LittleEndian.Uint16(valBytes[2*j:]))
			acc[i] += h.ToFloat32() * inv
		} else {
			acc[i] += math.Float32frombits(binary.LittleEndian.Uint32(valBytes[4*j:]))
		}
	}
	return nil
}

// selectTopK writes the positions of the k largest-magnitude entries of v
// into idx (which must have capacity ≥ k) and returns them sorted
// ascending. Selection is deterministic: magnitude ties keep the lower
// index, exactly as a (|v| desc, index asc) sort prefix would. A k-bounded
// min-heap makes it O(n log k) — the same selection shape
// sampling.Decoder uses for top-k decoding.
func selectTopK(v []float32, k int, idx []int) []int {
	if k >= len(v) {
		idx = idx[:len(v)]
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	idx = idx[:k]
	for i := range idx {
		idx[i] = i
	}
	for i := k/2 - 1; i >= 0; i-- {
		siftSmallest(idx, v, i)
	}
	for i := k; i < len(v); i++ {
		if magWorse(v, idx[0], i) {
			idx[0] = i
			siftSmallest(idx, v, 0)
		}
	}
	// Heap order is arbitrary; the wire format wants ascending indices.
	sort.Ints(idx)
	return idx
}

// magWorse orders positions for selection: a is worse than b when its
// magnitude is smaller, ties going against the higher index.
func magWorse(v []float32, a, b int) bool {
	ma, mb := v[a], v[b]
	if ma < 0 {
		ma = -ma
	}
	if mb < 0 {
		mb = -mb
	}
	if ma != mb {
		return ma < mb
	}
	return a > b
}

// siftSmallest restores the min-heap property (worst kept entry at the
// root) below position i.
func siftSmallest(idx []int, v []float32, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(idx) && magWorse(v, idx[l], idx[m]) {
			m = l
		}
		if r < len(idx) && magWorse(v, idx[r], idx[m]) {
			m = r
		}
		if m == i {
			return
		}
		idx[i], idx[m] = idx[m], idx[i]
		i = m
	}
}
