// Package compress is the adaptive gradient-compression subsystem: the next
// multiplier on wire bytes after the paper's own uniqueness (§III-A) and
// FP16 compression-scaling (§III-C) techniques, composing with — not
// replacing — both.
//
// Two mechanisms are provided, mirroring the two most-cited directions in
// gradient compression:
//
//   - Top-k sparsification with error feedback (Deep-Gradient-Compression
//     style): each rank accumulates its dense gradient into a per-tensor
//     residual, sends only the k largest-magnitude entries, and carries the
//     rest into the next step. An optional momentum correction accumulates
//     a velocity before the residual so delayed coordinates still arrive
//     with their momentum, which is what preserves convergence at
//     aggressive ratios. The exchange itself is the compressed all-reduce
//     of internal/collective: payloads all-gather and every rank
//     decode-sums them in rank order, so replicas stay bit-identical.
//
//   - 8-bit stochastic quantization with per-chunk scales (1-bit-SGD
//     lineage, widened to int8): Quant8 implements collective.Wire, so it
//     rides the existing ring all-reduce exactly like the FP16 scaler —
//     every hop's payload is quantized to one byte per element plus one
//     FP32 scale per chunk. Stochastic rounding draws from the
//     deterministic per-rank RNG streams (internal/rng), keeping reruns
//     and checkpoint-resumed runs bit-identical.
//
// A Zipf-aware policy layer picks per-tensor compressors: small dense
// tensors (biases, gates below MinElems) stay uncompressed — their payload
// is latency-bound, not bandwidth-bound — while embedding-class tensors can
// run a separate, more aggressive ratio derived from the corpus's measured
// type–token law (ZipfTune, via internal/powerlaw): a V×D output-embedding
// gradient only has non-zero rows for the U_g ≪ V words of the global
// batch, so its top-k ratio follows U_g/V from the same Figure-1 law the
// sparse exchanges exploit.
//
// The per-rank Engine owns the error-feedback state; it is snapshotted into
// checkpoints (internal/ckpt) so a resumed run replays the exact compressed
// trajectory — the same bit-identity contract the trainer enforces for
// weights, optimizer moments and RNG streams.
package compress

import (
	"fmt"
	"strings"

	"zipflm/internal/powerlaw"
)

// Method selects the compressor applied to large dense gradient tensors.
type Method int

const (
	// MethodNone disables compression (the base wire still applies).
	MethodNone Method = iota
	// MethodQuant8 quantizes the ring all-reduce wire to 8 bits per
	// element with per-chunk scales.
	MethodQuant8
	// MethodTopK sends only the k = ⌈Ratio·n⌉ largest-magnitude entries,
	// carrying the remainder in an error-feedback residual.
	MethodTopK
)

// String names the method for reports.
func (m Method) String() string {
	switch m {
	case MethodNone:
		return "none"
	case MethodQuant8:
		return "q8"
	case MethodTopK:
		return "topk"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Config describes one run's gradient-compression policy. The zero value is
// invalid; use a Method plus defaults filled in by Validate callers (the
// trainer validates on construction).
type Config struct {
	// Method is the compressor for large dense tensors.
	Method Method
	// Ratio is the top-k fraction of entries kept per tensor per step
	// (MethodTopK). Must be in (0, 1].
	Ratio float64
	// EmbedRatio, when positive, overrides Ratio for embedding-class
	// tensors (names containing "emb") — typically set by ZipfTune from
	// the corpus's type–token law.
	EmbedRatio float64
	// Momentum enables DGC-style momentum-corrected accumulation: a
	// velocity u ← Momentum·u + g feeds the residual instead of the raw
	// gradient, and a selected coordinate clears its velocity. 0 disables.
	Momentum float64
	// MinElems exempts small tensors: below this element count the tensor
	// travels uncompressed on the base wire (latency-bound payloads gain
	// nothing from shrinking). 0 means DefaultMinElems.
	MinElems int
	// ChunkElems is the Quant8 scale-block size (0 = DefaultChunkElems).
	ChunkElems int
	// Stochastic selects stochastic rounding for Quant8 (unbiased in
	// expectation); false rounds to nearest.
	Stochastic bool
	// Seed derives the per-rank quantization RNG streams.
	Seed uint64

	// RankAlpha is the fitted rank-frequency exponent ZipfTune records
	// (reporting only; 0 when never tuned).
	RankAlpha float64
}

// Defaults for zero Config fields.
const (
	DefaultMinElems   = 1024
	DefaultChunkElems = 256
)

// Validate checks the configuration and fills zero fields with defaults,
// returning the normalized copy.
func (c Config) Validate() (Config, error) {
	switch c.Method {
	case MethodNone, MethodQuant8, MethodTopK:
	default:
		return c, fmt.Errorf("compress: unknown method %d", int(c.Method))
	}
	if c.Method == MethodTopK {
		if c.Ratio <= 0 || c.Ratio > 1 {
			return c, fmt.Errorf("compress: top-k ratio %v outside (0, 1]", c.Ratio)
		}
		if c.EmbedRatio < 0 || c.EmbedRatio > 1 {
			return c, fmt.Errorf("compress: embedding ratio %v outside [0, 1]", c.EmbedRatio)
		}
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		return c, fmt.Errorf("compress: momentum %v outside [0, 1)", c.Momentum)
	}
	if c.MinElems == 0 {
		c.MinElems = DefaultMinElems
	}
	if c.ChunkElems <= 0 {
		c.ChunkElems = DefaultChunkElems
	}
	return c, nil
}

// embeddingClass reports whether a tensor name denotes an embedding-shaped
// gradient (one row per vocabulary word), the class whose sparsity follows
// the corpus's Zipf law rather than the architecture.
func embeddingClass(name string) bool {
	return strings.Contains(name, "emb")
}

// methodFor applies the policy to one tensor: the configured method for
// large tensors, uncompressed below the size floor.
func (c Config) methodFor(elems int) Method {
	if c.Method == MethodNone || elems < c.MinElems {
		return MethodNone
	}
	return c.Method
}

// ratioFor returns the top-k ratio for one tensor, with the Zipf-derived
// embedding override when set.
func (c Config) ratioFor(name string) float64 {
	if c.EmbedRatio > 0 && embeddingClass(name) {
		return c.EmbedRatio
	}
	return c.Ratio
}

// ZipfTune derives the embedding-class ratio from a token stream: it fits
// the type–token law U(N) = C·N^α (the paper's Figure 1) over log-spaced
// prefixes of the stream, predicts the unique-word count of one global
// batch, and sets EmbedRatio = U(globalBatch)/vocab — the expected fraction
// of embedding rows a step actually touches. It also records the
// rank-frequency exponent (powerlaw.FitRankFrequency) for reports. Streams
// too degenerate to fit (empty, single word type) leave the config
// untouched and return the fit error.
func (c *Config) ZipfTune(tokens []int, vocab, globalBatch int) error {
	rf, err := powerlaw.FitRankFrequency(tokens)
	if err != nil {
		return err
	}
	// Type–token points: unique count in growing prefixes, log-spaced so
	// the fit spans the curve rather than oversampling the tail.
	var xs, ys []float64
	seen := make(map[int]struct{})
	next := 16
	for i, w := range tokens {
		seen[w] = struct{}{}
		if i+1 == next || i == len(tokens)-1 {
			xs = append(xs, float64(i+1))
			ys = append(ys, float64(len(seen)))
			next *= 2
		}
	}
	tt, err := powerlaw.FitXY(xs, ys)
	if err != nil {
		return err
	}
	u := tt.Predict(float64(globalBatch))
	ratio := u / float64(vocab)
	if ratio > 1 {
		ratio = 1
	}
	if ratio <= 0 {
		return fmt.Errorf("compress: degenerate type-token fit %v", tt)
	}
	c.EmbedRatio = ratio
	c.RankAlpha = rf.Alpha
	return nil
}
