package compress

import (
	"math"
	"sync"
	"testing"

	"zipflm/internal/collective"
	"zipflm/internal/half"
)

// runRanks drives one engine per rank over a shared communicator, the way
// the trainer's rank goroutines do.
func runRanks(g int, fn func(rank int)) {
	var wg sync.WaitGroup
	for r := 0; r < g; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fn(rank)
		}(r)
	}
	wg.Wait()
}

// step pushes per-rank gradients through per-rank engines and returns each
// rank's reduced result.
func step(t *testing.T, comm *collective.Comm, engines []*Engine, name string, grads [][]float32) {
	t.Helper()
	errs := make([]error, len(engines))
	runRanks(len(engines), func(rank int) {
		errs[rank] = engines[rank].AllReduce(comm, rank, name, grads[rank])
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func newEngines(t *testing.T, g int, cfg Config, base collective.Wire) []*Engine {
	t.Helper()
	cc, err := cfg.Validate()
	if err != nil {
		t.Fatal(err)
	}
	es := make([]*Engine, g)
	for r := range es {
		es[r] = NewEngine(cc, base, r)
	}
	return es
}

func TestEngineTopKReplicasIdentical(t *testing.T) {
	const g, n = 4, 600
	for _, base := range []collective.Wire{nil, half.NewScaler(256)} {
		comm := collective.New(g)
		engines := newEngines(t, g, Config{Method: MethodTopK, Ratio: 0.05, Momentum: 0.9, MinElems: 1}, base)
		grads := make([][]float32, g)
		for s := 0; s < 5; s++ {
			for r := range grads {
				grads[r] = randVec(n, uint64(100*s+r))
			}
			step(t, comm, engines, "w", grads)
			for r := 1; r < g; r++ {
				for i := range grads[0] {
					if grads[r][i] != grads[0][i] {
						t.Fatalf("step %d: rank %d diverges at %d: %v vs %v", s, r, i, grads[r][i], grads[0][i])
					}
				}
			}
		}
	}
}

// TestEngineErrorFeedbackConserves checks the defining property of error
// feedback: nothing is lost, only delayed. Over any prefix of steps, what
// was delivered plus what every rank still carries equals the raw gradient
// sum.
func TestEngineErrorFeedbackConserves(t *testing.T) {
	const g, n, steps = 2, 400, 6
	comm := collective.New(g)
	engines := newEngines(t, g, Config{Method: MethodTopK, Ratio: 0.02, MinElems: 1}, nil)

	total := make([]float64, n)     // Σ raw gradients over ranks and steps
	delivered := make([]float64, n) // Σ reduced results over steps
	grads := make([][]float32, g)
	for s := 0; s < steps; s++ {
		for r := range grads {
			grads[r] = randVec(n, uint64(7000+10*s+r))
			for i, v := range grads[r] {
				total[i] += float64(v)
			}
		}
		step(t, comm, engines, "w", grads)
		for i, v := range grads[0] {
			delivered[i] += float64(v)
		}
	}
	for i := range total {
		var carried float64
		for r := 0; r < g; r++ {
			carried += float64(engines[r].carries["w"].resid[i])
		}
		if diff := math.Abs(delivered[i] + carried - total[i]); diff > 1e-3 {
			t.Fatalf("element %d leaks gradient mass: delivered %v + carried %v != total %v (diff %v)",
				i, delivered[i], carried, total[i], diff)
		}
	}
}

func TestEngineSmallTensorsUncompressed(t *testing.T) {
	const g = 2
	comm := collective.New(g)
	engines := newEngines(t, g, Config{Method: MethodTopK, Ratio: 0.01, MinElems: 1000}, nil)
	grads := [][]float32{randVec(64, 1), randVec(64, 2)}
	want := make([]float32, 64)
	for i := range want {
		want[i] = grads[0][i] + grads[1][i]
	}
	step(t, comm, engines, "bias", grads)
	for i := range want {
		if grads[0][i] != want[i] {
			t.Fatalf("small tensor lossy at %d: %v vs exact %v", i, grads[0][i], want[i])
		}
	}
	if len(engines[0].carries) != 0 {
		t.Fatalf("uncompressed tensor grew a residual carry")
	}
}

func TestEngineQuant8CheaperThanFP16(t *testing.T) {
	const g, n = 4, 4096
	run := func(cfg Config, base collective.Wire) int64 {
		comm := collective.New(g)
		engines := newEngines(t, g, cfg, base)
		grads := make([][]float32, g)
		for r := range grads {
			grads[r] = randVec(n, uint64(r))
		}
		step(t, comm, engines, "w", grads)
		return comm.MaxStats().AllReduceBytes
	}
	fp32 := run(Config{Method: MethodNone}, nil)
	fp16 := run(Config{Method: MethodNone}, half.NewScaler(256))
	q8 := run(Config{Method: MethodQuant8, MinElems: 1, Stochastic: true, Seed: 3}, nil)
	if !(q8 < fp16 && fp16 < fp32) {
		t.Fatalf("wire bytes not ordered: q8 %d, fp16 %d, fp32 %d", q8, fp16, fp32)
	}
}

// TestEngineSnapshotRestore: an engine restored from a snapshot must
// produce the byte-identical future the original would have.
func TestEngineSnapshotRestore(t *testing.T) {
	const g, n = 2, 512
	cfg := Config{Method: MethodTopK, Ratio: 0.03, Momentum: 0.8, MinElems: 1}
	commA := collective.New(g)
	enginesA := newEngines(t, g, cfg, nil)
	gradAt := func(s, r int) []float32 { return randVec(n, uint64(31*s+r)) }

	grads := make([][]float32, g)
	for s := 0; s < 3; s++ {
		for r := range grads {
			grads[r] = gradAt(s, r)
		}
		step(t, commA, enginesA, "w", grads)
	}
	snaps := make([]EngineState, g)
	for r := range snaps {
		snaps[r] = enginesA[r].Snapshot()
	}

	// Fresh engines restored mid-run.
	commB := collective.New(g)
	enginesB := newEngines(t, g, cfg, nil)
	for r := range enginesB {
		if err := enginesB[r].Restore(snaps[r]); err != nil {
			t.Fatal(err)
		}
	}
	for s := 3; s < 6; s++ {
		a := make([][]float32, g)
		b := make([][]float32, g)
		for r := 0; r < g; r++ {
			a[r] = gradAt(s, r)
			b[r] = gradAt(s, r)
		}
		step(t, commA, enginesA, "w", a)
		step(t, commB, enginesB, "w", b)
		for i := range a[0] {
			if a[0][i] != b[0][i] {
				t.Fatalf("step %d: restored engine diverges at %d: %v vs %v", s, i, b[0][i], a[0][i])
			}
		}
	}

	// Snapshot mutation safety: later steps must not alter the capture.
	again := enginesA[0].Snapshot()
	if len(again.Tensors) != 1 || len(snaps[0].Tensors) != 1 {
		t.Fatalf("unexpected tensor counts in snapshots")
	}
	same := true
	for i, v := range snaps[0].Tensors[0].Residual {
		if again.Tensors[0].Residual[i] != v {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("residual did not evolve after 3 more steps — snapshot likely aliases live state")
	}
}

func TestEngineRestoreRejectsMismatch(t *testing.T) {
	cc, _ := Config{Method: MethodQuant8, Stochastic: true}.Validate()
	e := NewEngine(cc, nil, 0)
	if err := e.Restore(EngineState{}); err == nil {
		t.Fatal("quantizing engine accepted a snapshot with no RNG stream")
	}
	cc2, _ := Config{Method: MethodTopK, Ratio: 0.1}.Validate()
	e2 := NewEngine(cc2, nil, 0)
	err := e2.Restore(EngineState{Tensors: []TensorState{{Name: "w", Residual: make([]float32, 4), Momentum: make([]float32, 4)}}})
	if err == nil {
		t.Fatal("momentum-off engine accepted momentum state")
	}
}
