package compress

import (
	"math"

	"zipflm/internal/rng"
)

// Quant8 is 8-bit gradient quantization with per-chunk scales, packaged as
// a collective.Wire: each wire crossing maps a chunk of ChunkElems values
// onto the int8 grid q·(max|v|/127) and back. It plugs into the ring
// all-reduce exactly where the FP16 scaler does — every hop's payload is
// one byte per element plus one FP32 scale per chunk — so wire bytes drop
// 4× against FP32 and 2× against FP16 while the reduction algorithm, the
// closing barriers and the replica-identity argument stay untouched.
//
// Rounding is deterministic. Nearest mode is stateless. Stochastic mode —
// unbiased in expectation, the property that keeps quantized SGD converging
// — draws one variate per element from a deterministic xoshiro stream
// (internal/rng), so a rank's sequence of RoundTrip calls is reproducible
// across reruns, and State/SetState let checkpoints carry the stream across
// a resume. One Quant8 belongs to one rank; ranks may hold differently
// seeded instances because replica identity comes from the ring's
// owner-rounds-then-forwards-verbatim structure, not from ranks rounding
// alike (see collective.AllReduce — partial sums are re-rounded per hop, so
// quantization error compounds with G, as on real fabrics).
type Quant8 struct {
	// ChunkElems is the scale-block size (DefaultChunkElems when built by
	// NewQuant8 with 0).
	ChunkElems int
	// Stochastic selects stochastic rounding; false rounds to nearest.
	Stochastic bool
	r          *rng.RNG
	// codes is RoundTrip's per-chunk scratch, grown on demand so the ring
	// hot path stays allocation-free at steady state.
	codes []int8
}

// NewQuant8 returns a per-rank quantizer. The seed matters only in
// stochastic mode.
func NewQuant8(chunkElems int, stochastic bool, seed uint64) *Quant8 {
	if chunkElems <= 0 {
		chunkElems = DefaultChunkElems
	}
	return &Quant8{ChunkElems: chunkElems, Stochastic: stochastic, r: rng.New(seed)}
}

// WireBytes implements collective.Wire: one byte per element plus one FP32
// scale per chunk.
func (q *Quant8) WireBytes(n int) int {
	if n <= 0 {
		return 0
	}
	chunks := (n + q.ChunkElems - 1) / q.ChunkElems
	return n + 4*chunks
}

// WireName identifies this format in telemetry labels
// (collective.WireNamer).
func (q *Quant8) WireName() string { return "q8" }

// Chunks returns the number of scale blocks n elements occupy — the length
// Encode requires of its scales argument.
func (q *Quant8) Chunks(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + q.ChunkElems - 1) / q.ChunkElems
}

// RoundTrip implements collective.Wire: quantize x to the per-chunk int8
// grid in place — Encode then Decode, fused per chunk. All-zero chunks pass
// through untouched (their scale is degenerate and a real encoder would skip
// them), which is why the fused path exists alongside the split halves: the
// wire behavior predates them and must stay bit-identical.
func (q *Quant8) RoundTrip(x []float32) {
	if cap(q.codes) < q.ChunkElems {
		q.codes = make([]int8, q.ChunkElems)
	}
	for lo := 0; lo < len(x); lo += q.ChunkElems {
		hi := lo + q.ChunkElems
		if hi > len(x) {
			hi = len(x)
		}
		c := x[lo:hi]
		codes := q.codes[:len(c)]
		if scale := q.encodeChunk(codes, c); scale != 0 {
			decodeChunk(c, codes, scale)
		}
	}
}

// Encode quantizes x into int8 codes plus one FP32 scale per chunk — the
// encode-once half for weight storage and decode-many consumers. Like
// RoundTrip it sanitizes x in place before deriving scales (±Inf saturates to
// ±MaxFloat32, NaN drops to 0). len(codes) must equal len(x) and len(scales)
// must equal Chunks(len(x)). An all-zero chunk encodes as zero codes with
// scale 0.
func (q *Quant8) Encode(x []float32, codes []int8, scales []float32) {
	if len(codes) != len(x) || len(scales) != q.Chunks(len(x)) {
		panic("compress: Quant8.Encode buffer length mismatch")
	}
	for ci, lo := 0, 0; lo < len(x); ci, lo = ci+1, lo+q.ChunkElems {
		hi := lo + q.ChunkElems
		if hi > len(x) {
			hi = len(x)
		}
		scales[ci] = q.encodeChunk(codes[lo:hi], x[lo:hi])
	}
}

// Decode expands codes and scales produced by Encode into dst
// (len(dst) == len(codes)). Decoding is stateless and may run any number of
// times per Encode; a scale-0 chunk decodes to zeros.
func (q *Quant8) Decode(dst []float32, codes []int8, scales []float32) {
	if len(dst) != len(codes) || len(scales) != q.Chunks(len(codes)) {
		panic("compress: Quant8.Decode buffer length mismatch")
	}
	for ci, lo := 0, 0; lo < len(codes); ci, lo = ci+1, lo+q.ChunkElems {
		hi := lo + q.ChunkElems
		if hi > len(codes) {
			hi = len(codes)
		}
		decodeChunk(dst[lo:hi], codes[lo:hi], scales[ci])
	}
}

// encodeChunk quantizes one scale block into codes, sanitizing c in place,
// and returns the chunk scale (0 when the sanitized chunk is all zero).
func (q *Quant8) encodeChunk(codes []int8, c []float32) float32 {
	var maxAbs float32
	for i, v := range c {
		// Sanitize non-finite elements before the scale is derived, the
		// way every wire format here clips overflow (half.Scaler and
		// EncodeTopK saturate to max finite): an Inf shipped on the ring
		// would sum into every replica and poison training irrecoverably.
		if math.IsInf(float64(v), 0) {
			v = float32(math.Copysign(math.MaxFloat32, float64(v)))
			c[i] = v
		} else if math.IsNaN(float64(v)) {
			v = 0
			c[i] = 0
		}
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		for i := range codes {
			codes[i] = 0
		}
		return 0
	}
	scale := maxAbs / 127
	inv := 1 / scale
	for i, v := range c {
		t := v * inv
		var grid float32
		if q.Stochastic {
			lo := float32(math.Floor(float64(t)))
			if q.r.Float32() < t-lo {
				grid = lo + 1
			} else {
				grid = lo
			}
		} else {
			grid = float32(math.Round(float64(t)))
		}
		if grid > 127 {
			grid = 127
		} else if grid < -127 {
			grid = -127
		}
		codes[i] = int8(grid)
	}
	return scale
}

// decodeChunk expands one scale block: dst[i] = codes[i]·scale, clamped back
// to finite. (scale = maxAbs/127 rounds to nearest, so 127·scale can land one
// ulp past the float32 range at extreme magnitudes; clamp rather than ship
// Inf.)
func decodeChunk(dst []float32, codes []int8, scale float32) {
	for i, g := range codes {
		r := float32(g) * scale
		if math.IsInf(float64(r), 0) {
			r = float32(math.Copysign(math.MaxFloat32, float64(r)))
		}
		dst[i] = r
	}
}

// State exposes the stochastic-rounding stream for checkpoints.
func (q *Quant8) State() [4]uint64 { return q.r.State() }

// SetState restores a stream captured by State.
func (q *Quant8) SetState(s [4]uint64) { q.r.SetState(s) }
