package compress

import (
	"math"

	"zipflm/internal/rng"
)

// Quant8 is 8-bit gradient quantization with per-chunk scales, packaged as
// a collective.Wire: each wire crossing maps a chunk of ChunkElems values
// onto the int8 grid q·(max|v|/127) and back. It plugs into the ring
// all-reduce exactly where the FP16 scaler does — every hop's payload is
// one byte per element plus one FP32 scale per chunk — so wire bytes drop
// 4× against FP32 and 2× against FP16 while the reduction algorithm, the
// closing barriers and the replica-identity argument stay untouched.
//
// Rounding is deterministic. Nearest mode is stateless. Stochastic mode —
// unbiased in expectation, the property that keeps quantized SGD converging
// — draws one variate per element from a deterministic xoshiro stream
// (internal/rng), so a rank's sequence of RoundTrip calls is reproducible
// across reruns, and State/SetState let checkpoints carry the stream across
// a resume. One Quant8 belongs to one rank; ranks may hold differently
// seeded instances because replica identity comes from the ring's
// owner-rounds-then-forwards-verbatim structure, not from ranks rounding
// alike (see collective.AllReduce — partial sums are re-rounded per hop, so
// quantization error compounds with G, as on real fabrics).
type Quant8 struct {
	// ChunkElems is the scale-block size (DefaultChunkElems when built by
	// NewQuant8 with 0).
	ChunkElems int
	// Stochastic selects stochastic rounding; false rounds to nearest.
	Stochastic bool
	r          *rng.RNG
}

// NewQuant8 returns a per-rank quantizer. The seed matters only in
// stochastic mode.
func NewQuant8(chunkElems int, stochastic bool, seed uint64) *Quant8 {
	if chunkElems <= 0 {
		chunkElems = DefaultChunkElems
	}
	return &Quant8{ChunkElems: chunkElems, Stochastic: stochastic, r: rng.New(seed)}
}

// WireBytes implements collective.Wire: one byte per element plus one FP32
// scale per chunk.
func (q *Quant8) WireBytes(n int) int {
	if n <= 0 {
		return 0
	}
	chunks := (n + q.ChunkElems - 1) / q.ChunkElems
	return n + 4*chunks
}

// RoundTrip implements collective.Wire: quantize x to the per-chunk int8
// grid in place. All-zero chunks pass through untouched (their scale is
// degenerate and a real encoder would skip them).
func (q *Quant8) RoundTrip(x []float32) {
	for lo := 0; lo < len(x); lo += q.ChunkElems {
		hi := lo + q.ChunkElems
		if hi > len(x) {
			hi = len(x)
		}
		q.roundChunk(x[lo:hi])
	}
}

// roundChunk quantizes one scale block.
func (q *Quant8) roundChunk(c []float32) {
	var maxAbs float32
	for i, v := range c {
		// Sanitize non-finite elements before the scale is derived, the
		// way every wire format here clips overflow (half.Scaler and
		// EncodeTopK saturate to max finite): an Inf shipped on the ring
		// would sum into every replica and poison training irrecoverably.
		if math.IsInf(float64(v), 0) {
			v = float32(math.Copysign(math.MaxFloat32, float64(v)))
			c[i] = v
		} else if math.IsNaN(float64(v)) {
			v = 0
			c[i] = 0
		}
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return
	}
	scale := maxAbs / 127
	inv := 1 / scale
	for i, v := range c {
		t := v * inv
		var grid float32
		if q.Stochastic {
			lo := float32(math.Floor(float64(t)))
			if q.r.Float32() < t-lo {
				grid = lo + 1
			} else {
				grid = lo
			}
		} else {
			grid = float32(math.Round(float64(t)))
		}
		if grid > 127 {
			grid = 127
		} else if grid < -127 {
			grid = -127
		}
		r := grid * scale
		if math.IsInf(float64(r), 0) {
			// scale = maxAbs/127 rounds to nearest, so 127·scale can land
			// one ulp past the float32 range at extreme magnitudes; clamp
			// back to finite rather than shipping Inf.
			r = float32(math.Copysign(math.MaxFloat32, float64(r)))
		}
		c[i] = r
	}
}

// State exposes the stochastic-rounding stream for checkpoints.
func (q *Quant8) State() [4]uint64 { return q.r.State() }

// SetState restores a stream captured by State.
func (q *Quant8) SetState(s [4]uint64) { q.r.SetState(s) }
