// Package metrics provides the accuracy and scaling metrics the paper
// reports, plus fixed-width table formatting for the experiment harnesses.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Perplexity converts mean cross-entropy (nats/token) to perplexity.
func Perplexity(meanNats float64) float64 { return math.Exp(meanNats) }

// BPC converts mean cross-entropy (nats/char) to bits per character.
func BPC(meanNats float64) float64 { return meanNats / math.Ln2 }

// AccuracyImprovement is the Table V metric: relative perplexity reduction
// from a baseline ("a 93 GB corpus on 192 GPUs delivers 35% accuracy
// improvement" = (17.06−11.1)/17.06).
func AccuracyImprovement(baselinePPL, ppl float64) float64 {
	if baselinePPL <= 0 {
		return 0
	}
	return (baselinePPL - ppl) / baselinePPL
}

// HumanBytes renders a byte count the way the paper's text does (GB with
// decimal prefixes).
func HumanBytes(b int64) string {
	switch {
	case b >= 1e12:
		return fmt.Sprintf("%.2f TB", float64(b)/1e12)
	case b >= 1e9:
		return fmt.Sprintf("%.2f GB", float64(b)/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.2f MB", float64(b)/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.2f KB", float64(b)/1e3)
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// Table accumulates rows and renders a fixed-width text table, the output
// format of every experiment harness.
type Table struct {
	Title   string
	headers []string
	units   []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends one row; cells beyond the header count are dropped,
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Headers returns the column headers.
func (t *Table) Headers() []string {
	out := make([]string, len(t.headers))
	copy(out, t.headers)
	return out
}

// SetUnits annotates the columns with units ("ms", "tok/s", "nats"; ""
// for dimensionless columns). Units beyond the header count are dropped,
// missing units are empty. The rendered header becomes "name [unit]" and
// the JSON emitters carry the units alongside the headers, so a consumer
// never has to guess a column's dimension. Returns the table for chaining.
func (t *Table) SetUnits(units ...string) *Table {
	t.units = make([]string, len(t.headers))
	for i := range t.units {
		if i < len(units) {
			t.units[i] = units[i]
		}
	}
	return t
}

// Units returns the per-column units set by SetUnits, or nil when the
// table carries none.
func (t *Table) Units() []string {
	if t.units == nil {
		return nil
	}
	out := make([]string, len(t.units))
	copy(out, t.units)
	return out
}

// headerCells returns the headers as rendered: "name [unit]" for columns
// with a unit, bare name otherwise.
func (t *Table) headerCells() []string {
	cells := make([]string, len(t.headers))
	for i, h := range t.headers {
		if t.units != nil && t.units[i] != "" {
			cells[i] = h + " [" + t.units[i] + "]"
		} else {
			cells[i] = h
		}
	}
	return cells
}

// Rows returns a copy of the accumulated rows, each padded to the header
// count — the machine-readable view the -json experiment output uses.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, row := range t.rows {
		cp := make([]string, len(row))
		copy(cp, row)
		out[i] = cp
	}
	return out
}

// AddRowf formats each cell with fmt.Sprint.
func (t *Table) AddRowf(cells ...interface{}) {
	s := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			s[i] = fmt.Sprintf("%.2f", v)
		default:
			s[i] = fmt.Sprint(c)
		}
	}
	t.AddRow(s...)
}

// String renders the table.
func (t *Table) String() string {
	headers := t.headerCells()
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
