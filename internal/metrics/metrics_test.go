package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestPerplexityAndBPC(t *testing.T) {
	if math.Abs(Perplexity(0)-1) > 1e-12 {
		t.Error("Perplexity(0) != 1")
	}
	if math.Abs(BPC(math.Ln2)-1) > 1e-12 {
		t.Error("BPC(ln 2) != 1")
	}
}

func TestAccuracyImprovementMatchesTableV(t *testing.T) {
	// Table V + §V-C: 17.06 → 11.1 is the "35% accuracy improvement".
	got := AccuracyImprovement(17.06, 11.1)
	if math.Abs(got-0.35) > 0.01 {
		t.Errorf("improvement = %v, paper says 35%%", got)
	}
	// 17.06 → 13.6 is the 20% improvement at 24 GPUs.
	got24 := AccuracyImprovement(17.06, 13.6)
	if math.Abs(got24-0.20) > 0.01 {
		t.Errorf("improvement = %v, paper says 20%%", got24)
	}
	if AccuracyImprovement(0, 5) != 0 {
		t.Error("zero baseline must yield 0")
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		500:              "500 B",
		2_000:            "2.00 KB",
		3_940_000_000:    "3.94 GB",
		93_120_000_000:   "93.12 GB",
		1_500_000_000_00: "150.00 GB",
	}
	for in, want := range cases {
		if got := HumanBytes(in); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", in, got, want)
		}
	}
	if got := HumanBytes(2e12); got != "2.00 TB" {
		t.Errorf("TB formatting: %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Table III", "GPUs", "Time", "Eff")
	tab.AddRowf(8, 14.6, "100%")
	tab.AddRowf(16, 8.1, "90%")
	tab.AddRow("64", "4.5") // missing cell renders empty
	out := tab.String()
	if !strings.Contains(out, "Table III") || !strings.Contains(out, "14.60") {
		t.Errorf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, rule, 3 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: header and first row start identically.
	if !strings.HasPrefix(lines[1], "GPUs") {
		t.Errorf("header line %q", lines[1])
	}
}

// TestTableUnitsRoundTrip: units survive the header → JSON-emitter round
// trip — SetUnits pads/truncates against the header count, Units returns
// what a JSON emitter must carry, and the rendered header shows "name
// [unit]" only for columns that have one.
func TestTableUnitsRoundTrip(t *testing.T) {
	tab := NewTable("t:", "config", "latency", "throughput")
	tab.SetUnits("", "ms", "tok/s", "dropped-extra")
	tab.AddRow("a", "1.5", "900")

	units := tab.Units()
	want := []string{"", "ms", "tok/s"}
	if len(units) != len(want) {
		t.Fatalf("Units() = %v, want %v", units, want)
	}
	for i := range want {
		if units[i] != want[i] {
			t.Fatalf("Units()[%d] = %q, want %q", i, units[i], want[i])
		}
	}
	// Mutating the returned slice must not leak into the table.
	units[1] = "corrupted"
	if tab.Units()[1] != "ms" {
		t.Fatal("Units() returned the internal slice, not a copy")
	}

	out := tab.String()
	for _, wantStr := range []string{"latency [ms]", "throughput [tok/s]"} {
		if !strings.Contains(out, wantStr) {
			t.Errorf("rendered table missing %q:\n%s", wantStr, out)
		}
	}
	if strings.Contains(out, "config [") {
		t.Errorf("unit-less column rendered a bracket:\n%s", out)
	}
	if strings.Contains(out, "dropped-extra") {
		t.Errorf("excess unit not dropped:\n%s", out)
	}

	// A table that never calls SetUnits carries none (omitted from JSON).
	if NewTable("t:", "a").Units() != nil {
		t.Error("Units() on a unit-less table must be nil")
	}
}
