// Package dash renders a live terminal dashboard over the telemetry
// layer: successive registry snapshots become windowed rates and trends,
// drawn as aligned rows with Unicode sparklines using nothing but ANSI
// escapes — no terminal library, no dependencies. The same Board backs
// cmd/zipflm-top (polling a remote /metrics endpoint's JSON snapshot)
// and the -dashboard flags on zipflm-serve and zipflm-train (reading the
// in-process registry), because both produce the one input the board
// consumes: a telemetry.Snapshot per tick.
package dash

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"zipflm/internal/telemetry"
)

// spec declares one dashboard panel: a display name, a unit, and a
// derivation from two successive snapshots. A panel only appears once its
// derivation has succeeded (its metrics exist), so one board serves both
// the trainer's and the server's metric families without configuration.
type spec struct {
	name string
	unit string
	// value derives the panel's current reading from the previous and
	// current snapshot, dt wall-seconds apart (dt > 0).
	value func(prev, cur telemetry.Snapshot, dt float64) (float64, bool)
}

// rate derives a per-second rate from a counter's delta.
func rate(counter string) func(prev, cur telemetry.Snapshot, dt float64) (float64, bool) {
	return func(prev, cur telemetry.Snapshot, dt float64) (float64, bool) {
		p, okP := prev.Counters[counter]
		c, okC := cur.Counters[counter]
		if !okP || !okC {
			return 0, false
		}
		return float64(c-p) / dt, true
	}
}

// gauge reads a gauge as-is.
func gauge(name string, scale float64) func(prev, cur telemetry.Snapshot, dt float64) (float64, bool) {
	return func(_, cur telemetry.Snapshot, _ float64) (float64, bool) {
		v, ok := cur.Gauges[name]
		return v * scale, ok
	}
}

// wmean derives a histogram's windowed mean (delta sum over delta count)
// in exported units times scale; falls back to not-ok when the window saw
// no observations.
func wmean(hist string, scale float64) func(prev, cur telemetry.Snapshot, dt float64) (float64, bool) {
	return func(prev, cur telemetry.Snapshot, _ float64) (float64, bool) {
		p, okP := prev.Histograms[hist]
		c, okC := cur.Histograms[hist]
		if !okP || !okC || c.Count <= p.Count {
			return 0, false
		}
		return (c.Sum - p.Sum) / float64(c.Count-p.Count) * scale, true
	}
}

// gaugeRatio derives 100·a/(a+b) from the deltas of two gauges that count
// monotonically (the serve layer folds cache counters into gauges).
func gaugeRatio(a, b string) func(prev, cur telemetry.Snapshot, dt float64) (float64, bool) {
	return func(prev, cur telemetry.Snapshot, _ float64) (float64, bool) {
		da := cur.Gauges[a] - prev.Gauges[a]
		db := cur.Gauges[b] - prev.Gauges[b]
		if _, ok := cur.Gauges[a]; !ok {
			return 0, false
		}
		if da+db <= 0 {
			return 0, false
		}
		return 100 * da / (da + db), true
	}
}

// burnMax reads the maximum SLO burn-rate gauge across every objective
// and window — the single number that says "an SLO is burning budget".
func burnMax(prev, cur telemetry.Snapshot, dt float64) (float64, bool) {
	max, found := 0.0, false
	for name, v := range cur.Gauges {
		if strings.HasPrefix(name, "zipflm_slo_burn_rate{") {
			found = true
			if v > max {
				max = v
			}
		}
	}
	return max, found
}

// specs is the board's panel catalog, in display order: the serving rows,
// the training rows, then the cross-cutting SLO row. Histogram units in a
// Snapshot are already exported (seconds), hence the 1e3 scales to ms.
var specs = []spec{
	{"serve tok/s", "tok/s", rate("zipflm_serve_tokens_total")},
	{"serve req/s", "req/s", rate("zipflm_serve_completed_total")},
	{"latency", "ms", wmean("zipflm_serve_latency_seconds", 1e3)},
	{"queue depth", "", gauge("zipflm_serve_queue_depth", 1)},
	{"batch occupancy", "seq", gauge("zipflm_serve_batch_occupancy", 1)},
	{"cache hit rate", "%", gaugeRatio("zipflm_serve_result_cache_hits", "zipflm_serve_result_cache_misses")},
	{"shed/s", "req/s", rate("zipflm_serve_shed_total")},
	{"train tok/s", "tok/s", rate("zipflm_train_tokens_total")},
	{"step compute", "ms", wmean("zipflm_train_compute_seconds", 1e3)},
	{"step sync", "ms", wmean("zipflm_train_sync_seconds", 1e3)},
	{"goodput", "", gauge("zipflm_train_goodput_ratio", 1)},
	{"sim clock", "s", gauge("zipflm_train_sim_seconds", 1)},
	{"SLO burn max", "×", burnMax},
}

// sparkLevels are the eight block heights a sparkline cell can take.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a fixed-width trend strip, right-aligned
// (newest value rightmost), scaled to the series' own min..max. A flat
// series draws at the lowest level; missing leading history is blank.
func Sparkline(values []float64, width int) string {
	if width <= 0 {
		return ""
	}
	if len(values) > width {
		values = values[len(values)-width:]
	}
	lo, hi := 0.0, 0.0
	for i, v := range values {
		if i == 0 || v < lo {
			lo = v
		}
		if i == 0 || v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for i := 0; i < width-len(values); i++ {
		b.WriteByte(' ')
	}
	for _, v := range values {
		level := 0
		if hi > lo {
			level = int((v - lo) / (hi - lo) * float64(len(sparkLevels)-1))
			if level < 0 {
				level = 0
			}
			if level >= len(sparkLevels) {
				level = len(sparkLevels) - 1
			}
		}
		b.WriteRune(sparkLevels[level])
	}
	return b.String()
}

// panel is one live row: its spec plus the trend ring.
type panel struct {
	spec
	series []float64
	seen   bool
	last   float64
}

// Board accumulates snapshots and renders frames. Not safe for concurrent
// use; drive it from one goroutine.
type Board struct {
	width  int
	panels []*panel
	slo    []string

	havePrev bool
	prevAt   time.Time
	prev     telemetry.Snapshot
	start    time.Time
	frames   int
}

// DefaultWidth is the sparkline width when Config leaves it zero.
const DefaultWidth = 36

// New returns an empty board with the given sparkline width (<=0 takes
// DefaultWidth).
func New(width int) *Board {
	if width <= 0 {
		width = DefaultWidth
	}
	b := &Board{width: width}
	for i := range specs {
		b.panels = append(b.panels, &panel{spec: specs[i]})
	}
	return b
}

// Observe feeds the next snapshot, stamped at its collection time.
func (b *Board) Observe(at time.Time, snap telemetry.Snapshot) {
	if b.frames == 0 {
		b.start = at
	}
	b.frames++
	if b.havePrev {
		dt := at.Sub(b.prevAt).Seconds()
		if dt > 0 {
			for _, p := range b.panels {
				if v, ok := p.value(b.prev, snap, dt); ok {
					p.seen = true
					p.last = v
					p.series = append(p.series, v)
					if len(p.series) > b.width {
						p.series = p.series[len(p.series)-b.width:]
					}
				}
			}
		}
	}
	b.slo = sloLines(snap)
	b.prev, b.prevAt, b.havePrev = snap, at, true
}

// sloLines summarizes the per-objective SLO gauges for the footer.
func sloLines(snap telemetry.Snapshot) []string {
	var names []string
	for name := range snap.Gauges {
		if rest, ok := strings.CutPrefix(name, `zipflm_slo_compliant{slo="`); ok {
			if obj, _, ok := strings.Cut(rest, `"`); ok {
				names = append(names, obj)
			}
		}
	}
	sort.Strings(names)
	var out []string
	for _, obj := range names {
		verdict := "MET"
		if snap.Gauges[fmt.Sprintf(`zipflm_slo_compliant{slo=%q}`, obj)] == 0 {
			verdict = "VIOLATED"
		}
		cur := snap.Gauges[fmt.Sprintf(`zipflm_slo_current{slo=%q}`, obj)]
		target := snap.Gauges[fmt.Sprintf(`zipflm_slo_target{slo=%q}`, obj)]
		budget := snap.Gauges[fmt.Sprintf(`zipflm_slo_budget_used{slo=%q}`, obj)]
		out = append(out, fmt.Sprintf("SLO %-16s %-8s current %.4g target %.4g budget %.0f%%",
			obj, verdict, cur, target, 100*budget))
	}
	return out
}

// ansi sequences: clear screen once, then home + erase per frame, so the
// terminal never scrolls and never flickers a full clear.
const (
	ansiClear     = "\x1b[2J"
	ansiHome      = "\x1b[H"
	ansiEraseLine = "\x1b[K"
	ansiEraseRest = "\x1b[J"
)

// Frame renders the current state. With ansi true the frame starts with
// cursor-home and erases stale content in place (call once per tick on a
// terminal); with ansi false it is plain text, one frame per call — the
// mode CI smokes and log captures use.
func (b *Board) Frame(title string, ansi bool) string {
	var out strings.Builder
	eol := "\n"
	if ansi {
		if b.frames <= 1 {
			out.WriteString(ansiClear)
		}
		out.WriteString(ansiHome)
		eol = ansiEraseLine + "\n"
	}
	up := time.Duration(0)
	if b.frames > 0 {
		up = b.prevAt.Sub(b.start).Round(time.Second)
	}
	fmt.Fprintf(&out, "%s — up %s, %d samples%s", title, up, b.frames, eol)
	out.WriteString(eol)

	shown := 0
	for _, p := range b.panels {
		if !p.seen {
			continue
		}
		shown++
		fmt.Fprintf(&out, "  %-16s %10s %-5s %s%s",
			p.name, formatValue(p.last), p.unit, Sparkline(p.series, b.width), eol)
	}
	if shown == 0 {
		out.WriteString("  (waiting for two samples to compute trends)" + eol)
	}
	if len(b.slo) > 0 {
		out.WriteString(eol)
		for _, line := range b.slo {
			out.WriteString("  " + line + eol)
		}
	}
	if ansi {
		out.WriteString(ansiEraseRest)
	}
	return out.String()
}

// formatValue renders a reading compactly: integers stay integral, large
// values drop decimals, small ones keep precision.
func formatValue(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e9:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Run drives a board from src until stop closes: one Observe+Frame per
// interval, frames written to w (ANSI in-place when ansi). It is the
// in-process dashboard loop behind the -dashboard flags; zipflm-top runs
// the same shape with an HTTP poll as src.
func Run(w io.Writer, title string, interval time.Duration, width int, ansi bool, src func() telemetry.Snapshot, stop <-chan struct{}) {
	if interval <= 0 {
		interval = time.Second
	}
	b := New(width)
	b.Observe(time.Now(), src())
	fmt.Fprint(w, b.Frame(title, ansi))
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			b.Observe(now, src())
			fmt.Fprint(w, b.Frame(title, ansi))
		}
	}
}
