package dash

import (
	"strings"
	"testing"
	"time"

	"zipflm/internal/telemetry"
)

// snapAt builds a snapshot the way a poller would see one.
func snapshotOf(build func(r *telemetry.Registry)) telemetry.Snapshot {
	r := telemetry.NewRegistry()
	build(r)
	return r.Snapshot()
}

func TestSparkline(t *testing.T) {
	if got := Sparkline([]float64{0, 1, 2, 3}, 4); got != "▁▃▅█" {
		t.Errorf("ramp sparkline = %q", got)
	}
	if got := Sparkline([]float64{5, 5, 5}, 3); got != "▁▁▁" {
		t.Errorf("flat sparkline = %q, want lowest level", got)
	}
	if got := Sparkline([]float64{1, 2}, 4); got != "  ▁█" {
		t.Errorf("short series = %q, want right-aligned", got)
	}
	if got := Sparkline([]float64{1, 2, 3, 4, 5, 6}, 3); got != "▁▄█" {
		t.Errorf("truncated series = %q, want newest 3", got)
	}
	if Sparkline(nil, 0) != "" {
		t.Error("zero width must render empty")
	}
}

func TestBoardDerivesRatesAndTrends(t *testing.T) {
	b := New(8)
	t0 := time.Unix(1000, 0)

	b.Observe(t0, snapshotOf(func(r *telemetry.Registry) {
		r.Counter("zipflm_serve_tokens_total").Add(100)
		r.Gauge("zipflm_serve_queue_depth").SetInt(2)
		h := r.Duration("zipflm_serve_latency_seconds")
		h.Observe(10 * time.Millisecond)
	}))
	b.Observe(t0.Add(2*time.Second), snapshotOf(func(r *telemetry.Registry) {
		r.Counter("zipflm_serve_tokens_total").Add(300)
		r.Gauge("zipflm_serve_queue_depth").SetInt(5)
		h := r.Duration("zipflm_serve_latency_seconds")
		h.Observe(10 * time.Millisecond)
		h.Observe(20 * time.Millisecond)
		h.Observe(40 * time.Millisecond)
	}))

	frame := b.Frame("test", false)
	if !strings.Contains(frame, "serve tok/s") || !strings.Contains(frame, "100") {
		t.Errorf("frame missing token rate (Δ200 over 2s = 100/s):\n%s", frame)
	}
	if !strings.Contains(frame, "queue depth") {
		t.Errorf("frame missing queue depth gauge:\n%s", frame)
	}
	// Windowed latency mean: between the snapshots the histogram gained 2
	// observations summing 60ms (wait: 20+40) → 30ms.
	if !strings.Contains(frame, "latency") {
		t.Errorf("frame missing latency panel:\n%s", frame)
	}
	// Panels whose metrics never appeared stay hidden.
	if strings.Contains(frame, "train tok/s") || strings.Contains(frame, "goodput") {
		t.Errorf("training panels shown without training metrics:\n%s", frame)
	}
}

func TestBoardWindowedLatencyMean(t *testing.T) {
	b := New(8)
	t0 := time.Unix(1000, 0)
	b.Observe(t0, snapshotOf(func(r *telemetry.Registry) {
		r.Duration("zipflm_serve_latency_seconds").Observe(100 * time.Millisecond)
	}))
	b.Observe(t0.Add(time.Second), snapshotOf(func(r *telemetry.Registry) {
		h := r.Duration("zipflm_serve_latency_seconds")
		h.Observe(100 * time.Millisecond) // the pre-window observation
		h.Observe(20 * time.Millisecond)
		h.Observe(40 * time.Millisecond)
	}))
	var lat *panel
	for _, p := range b.panels {
		if p.name == "latency" {
			lat = p
		}
	}
	if lat == nil || !lat.seen {
		t.Fatal("latency panel not derived")
	}
	if lat.last < 29.9 || lat.last > 30.1 {
		t.Fatalf("windowed latency mean = %g ms, want ≈30 (lifetime mean would be ≈53)", lat.last)
	}
}

func TestBoardSLOFooter(t *testing.T) {
	b := New(8)
	snap := snapshotOf(func(r *telemetry.Registry) {
		r.Gauge(`zipflm_slo_compliant{slo="latency_p99"}`).Set(0)
		r.Gauge(`zipflm_slo_current{slo="latency_p99"}`).Set(0.8)
		r.Gauge(`zipflm_slo_target{slo="latency_p99"}`).Set(0.5)
		r.Gauge(`zipflm_slo_budget_used{slo="latency_p99"}`).Set(2.5)
		r.Gauge(`zipflm_slo_burn_rate{slo="latency_p99",window="1m0s"}`).Set(3)
	})
	b.Observe(time.Unix(1000, 0), snap)
	b.Observe(time.Unix(1001, 0), snap)
	frame := b.Frame("test", false)
	if !strings.Contains(frame, "latency_p99") || !strings.Contains(frame, "VIOLATED") {
		t.Errorf("SLO footer missing violation:\n%s", frame)
	}
	if !strings.Contains(frame, "SLO burn max") {
		t.Errorf("burn-rate panel missing:\n%s", frame)
	}
}

func TestFrameANSIAndPlain(t *testing.T) {
	b := New(4)
	b.Observe(time.Unix(1000, 0), telemetry.Snapshot{})
	plain := b.Frame("t", false)
	if strings.Contains(plain, "\x1b") {
		t.Error("plain frame contains escape sequences")
	}
	if !strings.Contains(plain, "waiting for two samples") {
		t.Errorf("empty board frame:\n%s", plain)
	}
	ansi := b.Frame("t", true)
	if !strings.Contains(ansi, ansiHome) {
		t.Error("ANSI frame missing cursor home")
	}
}

func TestRunLoopStops(t *testing.T) {
	var sb strings.Builder
	stop := make(chan struct{})
	done := make(chan struct{})
	reg := telemetry.NewRegistry()
	reg.Counter("zipflm_serve_tokens_total").Add(1)
	go func() {
		defer close(done)
		Run(&sb, "t", 2*time.Millisecond, 8, false, reg.Snapshot, stop)
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Run did not stop")
	}
	if !strings.Contains(sb.String(), "samples") {
		t.Fatalf("Run rendered nothing:\n%s", sb.String())
	}
}
