package collective

import (
	"math"
	"sync"
	"testing"

	"zipflm/internal/half"
	"zipflm/internal/rng"
)

// runRanks executes fn on g goroutines (one per rank) and waits.
func runRanks(g int, fn func(rank int)) {
	var wg sync.WaitGroup
	for r := 0; r < g; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fn(rank)
		}(r)
	}
	wg.Wait()
}

func TestAllReduceMatchesSerialSum(t *testing.T) {
	for _, g := range []int{1, 2, 3, 5, 8} {
		for _, n := range []int{0, 1, 3, 7, 64, 100} {
			c := New(g)
			r := rng.New(uint64(g*1000 + n))
			inputs := make([][]float32, g)
			want := make([]float64, n)
			for rank := range inputs {
				inputs[rank] = make([]float32, n)
				for i := range inputs[rank] {
					inputs[rank][i] = float32(r.NormFloat64())
					want[i] += float64(inputs[rank][i])
				}
			}
			outputs := make([][]float32, g)
			runRanks(g, func(rank int) {
				buf := make([]float32, n)
				copy(buf, inputs[rank])
				c.AllReduce(rank, buf, nil)
				outputs[rank] = buf
			})
			for rank := 0; rank < g; rank++ {
				for i := 0; i < n; i++ {
					if math.Abs(float64(outputs[rank][i])-want[i]) > 1e-4 {
						t.Fatalf("g=%d n=%d rank=%d elem %d: got %v, want %v",
							g, n, rank, i, outputs[rank][i], want[i])
					}
				}
			}
			// All ranks must agree exactly (same reduction order per chunk).
			for rank := 1; rank < g; rank++ {
				for i := 0; i < n; i++ {
					if outputs[rank][i] != outputs[0][i] {
						t.Fatalf("g=%d n=%d: ranks disagree at %d", g, n, i)
					}
				}
			}
		}
	}
}

func TestAllReduceFP16Wire(t *testing.T) {
	const g, n = 4, 32
	c := New(g)
	inputs := make([][]float32, g)
	want := make([]float64, n)
	r := rng.New(5)
	for rank := range inputs {
		inputs[rank] = make([]float32, n)
		for i := range inputs[rank] {
			inputs[rank][i] = float32(r.NormFloat64())
			want[i] += float64(inputs[rank][i])
		}
	}
	scaler := half.NewScaler(512)
	outputs := make([][]float32, g)
	runRanks(g, func(rank int) {
		buf := make([]float32, n)
		copy(buf, inputs[rank])
		c.AllReduce(rank, buf, scaler)
		outputs[rank] = buf
	})
	for i := 0; i < n; i++ {
		// FP16 per-hop rounding: tolerance scales with magnitude.
		tol := math.Abs(want[i])*0.01 + 0.01
		if math.Abs(float64(outputs[0][i])-want[i]) > tol {
			t.Errorf("elem %d: got %v, want %v (±%v)", i, outputs[0][i], want[i], tol)
		}
	}
}

// TestAllReduceFP16RanksBitIdentical is the §II-B synchronization invariant
// under compression: every rank must end with *bit-identical* values, or
// data-parallel replicas silently diverge (regression test for the chunk-
// owner rounding bug).
func TestAllReduceFP16RanksBitIdentical(t *testing.T) {
	for _, g := range []int{2, 3, 4, 8} {
		const n = 37 // deliberately not divisible by g
		c := New(g)
		r := rng.New(uint64(g))
		inputs := make([][]float32, g)
		for rank := range inputs {
			inputs[rank] = make([]float32, n)
			for i := range inputs[rank] {
				inputs[rank][i] = float32(r.NormFloat64())
			}
		}
		outputs := make([][]float32, g)
		runRanks(g, func(rank int) {
			buf := make([]float32, n)
			copy(buf, inputs[rank])
			c.AllReduce(rank, buf, half.NewScaler(512))
			outputs[rank] = buf
		})
		for rank := 1; rank < g; rank++ {
			for i := 0; i < n; i++ {
				if outputs[rank][i] != outputs[0][i] {
					t.Fatalf("g=%d: rank %d diverged at %d: %v vs %v",
						g, rank, i, outputs[rank][i], outputs[0][i])
				}
			}
		}
	}
}

// TestAllReduceTrafficVolume verifies the measured wire volume matches the
// ring all-reduce bound 2·(G−1)/G·bytes per rank.
func TestAllReduceTrafficVolume(t *testing.T) {
	const g, n = 4, 64 // n divisible by g for exact chunking
	c := New(g)
	runRanks(g, func(rank int) {
		buf := make([]float32, n)
		c.AllReduce(rank, buf, nil)
	})
	wantBytes := int64(2 * (g - 1) * (n / g) * 4)
	for rank := 0; rank < g; rank++ {
		s := c.RankStats(rank)
		if s.AllReduceBytes != wantBytes {
			t.Errorf("rank %d: AllReduceBytes = %d, want %d", rank, s.AllReduceBytes, wantBytes)
		}
		if s.AllReduceCalls != 1 {
			t.Errorf("rank %d: calls = %d, want 1", rank, s.AllReduceCalls)
		}
	}
	// FP16 wire must halve the volume.
	c2 := New(g)
	runRanks(g, func(rank int) {
		buf := make([]float32, n)
		c2.AllReduce(rank, buf, half.NewScaler(1))
	})
	if got := c2.RankStats(0).AllReduceBytes; got != wantBytes/2 {
		t.Errorf("FP16 AllReduceBytes = %d, want %d", got, wantBytes/2)
	}
}

func TestAllGatherInts(t *testing.T) {
	for _, g := range []int{1, 3, 6} {
		c := New(g)
		results := make([][][]int, g)
		runRanks(g, func(rank int) {
			local := make([]int, rank+1) // variable lengths
			for i := range local {
				local[i] = rank*100 + i
			}
			results[rank] = c.AllGatherInts(rank, local)
		})
		for rank := 0; rank < g; rank++ {
			got := results[rank]
			if len(got) != g {
				t.Fatalf("g=%d rank=%d: %d slices", g, rank, len(got))
			}
			for r := 0; r < g; r++ {
				if len(got[r]) != r+1 {
					t.Fatalf("g=%d rank=%d: slice %d has len %d, want %d", g, rank, r, len(got[r]), r+1)
				}
				for i, v := range got[r] {
					if v != r*100+i {
						t.Fatalf("g=%d rank=%d: slice %d elem %d = %d", g, rank, r, i, v)
					}
				}
			}
		}
	}
}

func TestAllGatherIntsReuseAcrossRounds(t *testing.T) {
	const g = 3
	c := New(g)
	for round := 0; round < 5; round++ {
		results := make([][][]int, g)
		runRanks(g, func(rank int) {
			results[rank] = c.AllGatherInts(rank, []int{round*10 + rank})
		})
		for rank := 0; rank < g; rank++ {
			for r := 0; r < g; r++ {
				if results[rank][r][0] != round*10+r {
					t.Fatalf("round %d rank %d: got %v", round, rank, results[rank])
				}
			}
		}
	}
}

func TestAllGatherFloats(t *testing.T) {
	const g = 4
	c := New(g)
	results := make([][][]float32, g)
	runRanks(g, func(rank int) {
		local := []float32{float32(rank), float32(rank) * 2}
		results[rank] = c.AllGatherFloats(rank, local, nil)
	})
	for rank := 0; rank < g; rank++ {
		for r := 0; r < g; r++ {
			if results[rank][r][0] != float32(r) || results[rank][r][1] != float32(r)*2 {
				t.Fatalf("rank %d slice %d = %v", rank, r, results[rank][r])
			}
		}
	}
	// Returned slices must be caller-owned copies.
	results[0][1][0] = 999
	if results[1][1][0] == 999 {
		t.Error("AllGatherFloats returned shared storage")
	}
}

func TestAllGatherFloatsFP16HalvesBytes(t *testing.T) {
	const g, n = 4, 100
	run := func(wire Wire) int64 {
		c := New(g)
		runRanks(g, func(rank int) {
			c.AllGatherFloats(rank, make([]float32, n), wire)
		})
		return c.RankStats(0).AllGatherBytes
	}
	fp32 := run(nil)
	fp16 := run(half.NewScaler(1))
	if fp16*2 != fp32 {
		t.Errorf("FP16 gather bytes %d, FP32 %d; want exactly half", fp16, fp32)
	}
}

func TestBroadcast(t *testing.T) {
	const g = 5
	c := New(g)
	results := make([][]float32, g)
	runRanks(g, func(rank int) {
		buf := make([]float32, 3)
		if rank == 2 {
			buf[0], buf[1], buf[2] = 7, 8, 9
		}
		c.Broadcast(rank, 2, buf)
		results[rank] = buf
	})
	for rank := 0; rank < g; rank++ {
		if results[rank][0] != 7 || results[rank][2] != 9 {
			t.Fatalf("rank %d got %v", rank, results[rank])
		}
	}
}

func TestAgreeAllOK(t *testing.T) {
	const g = 4
	for _, badRank := range []int{-1, 0, 2} { // -1 = all ok
		c := New(g)
		results := make([]bool, g)
		runRanks(g, func(rank int) {
			results[rank] = c.AgreeAllOK(rank, rank != badRank)
		})
		want := badRank == -1
		for rank := 0; rank < g; rank++ {
			if results[rank] != want {
				t.Errorf("badRank=%d rank=%d: got %v, want %v", badRank, rank, results[rank], want)
			}
		}
		// Control plane must not count as data traffic.
		if c.RankStats(0).Total() != 0 {
			t.Error("AgreeAllOK added data-plane bytes")
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	b := NewBarrier(4)
	counter := 0
	var mu sync.Mutex
	runRanks(4, func(rank int) {
		for round := 0; round < 10; round++ {
			mu.Lock()
			counter++
			mu.Unlock()
			b.Wait()
			// After the barrier, all 4 increments of this round must
			// be visible.
			mu.Lock()
			if counter < (round+1)*4 {
				t.Errorf("barrier leaked: counter=%d in round %d", counter, round)
			}
			mu.Unlock()
			b.Wait()
		}
	})
	if counter != 40 {
		t.Fatalf("counter = %d, want 40", counter)
	}
}

func TestStatsArithmetic(t *testing.T) {
	a := Stats{AllReduceBytes: 100, AllGatherBytes: 50, BroadcastBytes: 10, AllReduceCalls: 2}
	b := Stats{AllReduceBytes: 40, AllGatherBytes: 20, BroadcastBytes: 10, AllReduceCalls: 1}
	d := a.Sub(b)
	if d.AllReduceBytes != 60 || d.AllGatherBytes != 30 || d.BroadcastBytes != 0 || d.AllReduceCalls != 1 {
		t.Errorf("Sub = %+v", d)
	}
	if a.Total() != 160 {
		t.Errorf("Total = %d, want 160", a.Total())
	}
	var acc Stats
	acc.Add(a)
	acc.Add(b)
	if acc.AllReduceBytes != 140 {
		t.Errorf("Add = %+v", acc)
	}
}

func TestSingleRankShortCircuits(t *testing.T) {
	c := New(1)
	buf := []float32{1, 2, 3}
	c.AllReduce(0, buf, nil)
	if buf[0] != 1 || buf[2] != 3 {
		t.Error("single-rank AllReduce must be identity")
	}
	if c.RankStats(0).AllReduceBytes != 0 {
		t.Error("single-rank AllReduce must move no bytes")
	}
}

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0) },
		func() { NewBarrier(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkAllReduce8x4096(b *testing.B) {
	const g, n = 8, 4096
	c := New(g)
	bufs := make([][]float32, g)
	for i := range bufs {
		bufs[i] = make([]float32, n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runRanks(g, func(rank int) {
			c.AllReduce(rank, bufs[rank], nil)
		})
	}
}
