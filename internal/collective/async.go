package collective

import "time"

// This file implements the bucketed, asynchronous all-reduce path
// (Horovod/DDP-style): a rank submits gradient tensors as backpropagation
// produces them, the communicator coalesces consecutive submissions into
// buckets, and each bucket runs the same ring all-reduce as the synchronous
// path — on a dedicated channel set — while the submitting goroutine keeps
// computing. Pending.Wait synchronizes on an individual tensor.
//
// Correctness rests on two invariants:
//
//  1. Deterministic bucketing. A bucket closes only on facts every rank
//     observes identically — cumulative submitted size crossing the bucket
//     threshold, a change of wire scaler, or an explicit FlushAsync — never
//     on timing. Since data-parallel ranks run the same program, all ranks
//     therefore partition their submissions into identical bucket
//     sequences, which is what lets bucket k on rank r ring-exchange with
//     bucket k on the neighbouring ranks.
//
//  2. Ordered execution. A rank's buckets run strictly in submission order
//     (each bucket's runner goroutine first waits for the previous
//     bucket), and async hops travel on asyncRing, disjoint from the
//     synchronous ring, so an in-flight bucket can overlap any synchronous
//     collective without interleaving hops.
//
// Because the ring core chunks each member tensor independently
// (ringAllReduce), the reduced values and the Stats byte accounting are
// bit-identical to calling AllReduce on each tensor synchronously — the
// equality the trainer's overlap tests assert.

// DefaultBucketBytes is the bucket-close threshold when the caller does not
// override it: small enough that a big layer starts reducing before the
// whole backward pass ends, large enough to amortize ring latency over
// many small tensors. Submitters that want layer-granular overlap (the
// trainer's backward hook) additionally call FlushAsync at each layer
// boundary rather than waiting for the threshold.
const DefaultBucketBytes = 1 << 20

// Pending is the completion handle of one asynchronously submitted tensor.
// Every tensor in a bucket completes at the same instant, so handles of one
// bucket share a single completion channel.
type Pending struct {
	done chan struct{}
}

// Wait blocks until the tensor's bucket has fully reduced; afterwards the
// submitted slice holds the global sum on every rank.
func (p *Pending) Wait() { <-p.done }

// asyncQueue is the per-rank bucket accumulator. It is only ever touched
// from the owning rank's goroutine chain (submissions and flushes for rank
// r must be serialized by the caller, exactly like every other per-rank
// collective call), so it needs no lock.
type asyncQueue struct {
	bucket [][]float32
	elems  int
	wire   Wire
	// done is the current bucket's completion channel, created at its
	// first submission and shared by all its Pending handles.
	done chan struct{}
	// prev is the completion signal of the most recently launched bucket;
	// the next bucket's runner waits on it so a rank's buckets execute in
	// submission order.
	prev chan struct{}
}

// SetBucketBytes overrides the async bucket-close threshold (in bytes of
// FP32 payload). All ranks share one value; callers must change it only
// while no async operations are in flight. Values below one element
// coalesce nothing (every submission becomes its own bucket).
func (c *Comm) SetBucketBytes(n int64) {
	if n < 4 {
		n = 4
	}
	c.bucketElems = int(n / 4)
}

// AllReduceAsync enqueues x for a bucketed ring all-reduce and returns
// immediately. The returned handle's Wait blocks until x holds the global
// elementwise sum. Submissions from one rank must come from that rank's
// goroutine (or be otherwise serialized), and every rank must submit the
// same sequence of tensor lengths, wire scalers, and flushes — the same
// matched-call discipline every synchronous collective already requires.
//
// Consecutive submissions coalesce into one ring pass until the cumulative
// payload crosses the bucket threshold (SetBucketBytes), the wire scaler
// changes, or FlushAsync is called. Byte accounting and reduced values are
// bit-identical to synchronous per-tensor AllReduce calls.
func (c *Comm) AllReduceAsync(rank int, x []float32, wire Wire) *Pending {
	q := &c.async[rank]
	if len(q.bucket) > 0 && q.wire != wire {
		c.flushBucket(rank)
	}
	if len(q.bucket) == 0 {
		q.done = make(chan struct{})
	}
	q.bucket = append(q.bucket, x)
	q.elems += len(x)
	q.wire = wire
	p := &Pending{done: q.done}
	if q.elems >= c.bucketElems {
		c.flushBucket(rank)
	}
	return p
}

// FlushAsync closes rank's current bucket, if any, and starts it reducing.
// It does not wait; use the Pending handles for completion. Every rank must
// flush at the same point in its submission sequence.
func (c *Comm) FlushAsync(rank int) { c.flushBucket(rank) }

// flushBucket launches the rank's accumulated bucket on the async ring.
func (c *Comm) flushBucket(rank int) {
	q := &c.async[rank]
	if len(q.bucket) == 0 {
		return
	}
	parts := q.bucket
	wire := q.wire
	done := q.done
	q.bucket = nil
	q.done = nil
	q.elems = 0
	waitPrev := q.prev
	q.prev = done

	go func() {
		var t0 time.Time
		if c.tel != nil {
			t0 = time.Now()
		}
		if waitPrev != nil {
			<-waitPrev
		}
		bytes := c.ringAllReduce(c.asyncRing, rank, parts, wire)
		// Closing barrier over this bucket's runners on all ranks: until
		// every rank's pass completes, peers still read aliases of this
		// rank's tensors (zero-copy hops), so the Pending handles must
		// not release earlier.
		if c.g > 1 {
			c.asyncBarrier.Wait()
		}
		c.mu.Lock()
		c.asyncStats[rank].AllReduceCalls += int64(len(parts))
		c.asyncStats[rank].AllReduceBytes += bytes
		c.mu.Unlock()
		if c.tel != nil {
			c.tel.record("allreduce_async", wireLabel(wire), int64(len(parts)), bytes, int64(time.Since(t0)))
		}
		close(done)
	}()
}
