//go:build !race

package collective

// raceEnabled: see race_on_test.go.
const raceEnabled = false
