package collective

import (
	"encoding/binary"
	"fmt"
	"math"
	"testing"
)

// rawF32Decoder is the simplest possible payload format — packed little
// endian float32 (index, value) pairs — standing in for the real
// compressors, which live a layer up in internal/compress.
type rawF32Decoder struct{}

func (rawF32Decoder) DecodeAdd(acc []float32, payload []byte) error {
	if len(payload)%8 != 0 {
		return fmt.Errorf("ragged payload of %d bytes", len(payload))
	}
	for o := 0; o < len(payload); o += 8 {
		i := int(binary.LittleEndian.Uint32(payload[o:]))
		if i >= len(acc) {
			return fmt.Errorf("index %d out of range %d", i, len(acc))
		}
		acc[i] += math.Float32frombits(binary.LittleEndian.Uint32(payload[o+4:]))
	}
	return nil
}

func encodePairs(pairs map[int]float32, order []int) []byte {
	var b []byte
	for _, i := range order {
		b = binary.LittleEndian.AppendUint32(b, uint32(i))
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(pairs[i]))
	}
	return b
}

func TestAllGatherBytesContentsAndAccounting(t *testing.T) {
	const g = 4
	c := New(g)
	// Ragged payloads: rank r contributes r+1 bytes of value r.
	outs := make([][][]byte, g)
	runRanks(g, func(rank int) {
		local := make([]byte, rank+1)
		for i := range local {
			local[i] = byte(rank)
		}
		outs[rank] = c.AllGatherBytes(rank, local)
	})
	for r := 0; r < g; r++ {
		for peer := 0; peer < g; peer++ {
			if len(outs[r][peer]) != peer+1 {
				t.Fatalf("rank %d sees %d bytes from %d, want %d", r, len(outs[r][peer]), peer, peer+1)
			}
			for _, b := range outs[r][peer] {
				if b != byte(peer) {
					t.Fatalf("rank %d corrupted payload from %d", r, peer)
				}
			}
		}
	}
	total := int64(1 + 2 + 3 + 4)
	want := total * (g - 1) / g
	if got := c.RankStats(0).AllGatherBytes; got != want {
		t.Fatalf("gather bytes %d, want ring volume %d", got, want)
	}
	// Result slices must be caller-owned copies, not blackboard aliases.
	outs[0][1][0] = 0xee
	runRanks(g, func(rank int) { c.AllGatherBytes(rank, []byte{9}) })
}

func TestAllReduceCompressedIdenticalAcrossRanks(t *testing.T) {
	const g, n = 4, 32
	c := New(g)
	results := make([][]float32, g)
	runRanks(g, func(rank int) {
		x := make([]float32, n)
		// Each rank "compresses away" everything but two entries.
		payload := encodePairs(map[int]float32{
			rank:             float32(rank + 1),
			(2*rank + 1) % n: 0.5,
		}, []int{rank, (2*rank + 1) % n})
		if err := c.AllReduceCompressed(rank, x, payload, rawF32Decoder{}); err != nil {
			t.Error(err)
		}
		results[rank] = x
	})
	for r := 1; r < g; r++ {
		for i := range results[0] {
			if results[r][i] != results[0][i] {
				t.Fatalf("rank %d diverges at %d: %v vs %v", r, i, results[r][i], results[0][i])
			}
		}
	}
	// Spot-check the sum semantics against a scalar reference.
	for i := 0; i < n; i++ {
		var sum float32
		for peer := 0; peer < g; peer++ {
			if peer == i {
				sum += float32(peer + 1)
			}
			if (2*peer+1)%n == i {
				sum += 0.5
			}
		}
		if results[0][i] != sum {
			t.Fatalf("index %d holds %v, want %v", i, results[0][i], sum)
		}
	}
}

func TestAllReduceCompressedOverwritesDestination(t *testing.T) {
	c := New(1)
	x := []float32{7, 7, 7, 7}
	payload := encodePairs(map[int]float32{2: 1.5}, []int{2})
	if err := c.AllReduceCompressed(0, x, payload, rawF32Decoder{}); err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 0, 1.5, 0}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("x = %v, want %v (previous contents must be discarded)", x, want)
		}
	}
}

func TestAllReduceCompressedAccountsCompressedBytes(t *testing.T) {
	const g, n = 4, 1000
	// Dense ring reference.
	dense := New(g)
	runRanks(g, func(rank int) {
		dense.AllReduce(rank, make([]float32, n), nil)
	})
	denseBytes := dense.MaxStats().AllReduceBytes

	// Compressed: 10 pairs of 8 bytes per rank.
	comp := New(g)
	runRanks(g, func(rank int) {
		pairs := map[int]float32{}
		var order []int
		for i := 0; i < 10; i++ {
			pairs[i*7] = 1
			order = append(order, i*7)
		}
		x := make([]float32, n)
		if err := comp.AllReduceCompressed(rank, x, encodePairs(pairs, order), rawF32Decoder{}); err != nil {
			t.Error(err)
		}
	})
	st := comp.MaxStats()
	wantBytes := int64(g*10*8) * (g - 1) / g
	if st.AllReduceBytes != wantBytes {
		t.Fatalf("compressed bytes %d, want ring all-gather volume %d", st.AllReduceBytes, wantBytes)
	}
	if st.AllReduceCalls != 1 {
		t.Fatalf("compressed call count %d, want 1", st.AllReduceCalls)
	}
	if st.AllReduceBytes >= denseBytes {
		t.Fatalf("compressed %d bytes not below dense %d", st.AllReduceBytes, denseBytes)
	}
}

func TestAllReduceCompressedChargesCostModel(t *testing.T) {
	const g = 4
	run := func() float64 {
		c, clocks := newCostComm(g)
		runRanks(g, func(rank int) {
			x := make([]float32, 64)
			payload := encodePairs(map[int]float32{rank: 1}, []int{rank})
			if err := c.AllReduceCompressed(rank, x, payload, rawF32Decoder{}); err != nil {
				t.Error(err)
			}
		})
		max := 0.0
		for _, cl := range clocks {
			if cl.Now() > max {
				max = cl.Now()
			}
		}
		return max
	}
	first := run()
	want := testLink.RingAllGatherSeconds(g, 8)
	if !eqTime(first, want) {
		t.Fatalf("charged %v, want all-gather of the max payload %v", first, want)
	}
	if again := run(); again != first {
		t.Fatalf("cost not deterministic: %v vs %v", again, first)
	}
}

func TestAllReduceCompressedDecodeErrorPropagates(t *testing.T) {
	const g = 2
	c := New(g)
	errs := make([]error, g)
	runRanks(g, func(rank int) {
		x := make([]float32, 4)
		// 5 bytes: ragged on every rank, so all ranks fail together and
		// nobody deadlocks in a half-abandoned collective.
		errs[rank] = c.AllReduceCompressed(rank, x, []byte{1, 2, 3, 4, 5}, rawF32Decoder{})
	})
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d decoded a ragged payload", r)
		}
	}
	// The communicator must remain usable after the failed collective.
	runRanks(g, func(rank int) {
		c.AllReduce(rank, make([]float32, 8), nil)
	})
}
