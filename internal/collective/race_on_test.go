//go:build race

package collective

// raceEnabled reports that this test binary was built with -race, under
// which sync.Pool intentionally drops items (poolRaceHack) and the runtime
// instrumentation itself allocates — allocation guards are meaningless
// there and skip themselves.
const raceEnabled = true
