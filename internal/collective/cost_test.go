package collective

import (
	"math"
	"testing"

	"zipflm/internal/half"
	"zipflm/internal/perfmodel"
	"zipflm/internal/vclock"
)

// testLink is a round-number fabric so expected durations are exact.
var testLink = perfmodel.LinkCost{Alpha: 1e-5, BytesPerSec: 1e9}

func newCostComm(g int) (*Comm, []*vclock.Clock) {
	c := New(g)
	clocks := make([]*vclock.Clock, g)
	for i := range clocks {
		clocks[i] = new(vclock.Clock)
	}
	c.AttachCost(&CostModel{Link: testLink, Clocks: clocks})
	return c, clocks
}

func eqTime(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestAllReduceAdvancesClocks(t *testing.T) {
	const g, n = 4, 1000
	c, clocks := newCostComm(g)
	runRanks(g, func(rank int) {
		x := make([]float32, n)
		x[rank] = 1
		c.AllReduce(rank, x, nil)
	})
	want := testLink.RingAllReduceSeconds(g, n, 4)
	if want <= 0 {
		t.Fatal("expected a positive ring duration")
	}
	for r, ck := range clocks {
		if !eqTime(ck.Now(), want) {
			t.Errorf("rank %d clock %v, want %v", r, ck.Now(), want)
		}
	}

	// FP16 halves per-element wire cost.
	runRanks(g, func(rank int) {
		x := make([]float32, n)
		c.AllReduce(rank, x, half.NewScaler(1))
	})
	want += testLink.RingAllReduceSeconds(g, n, 2)
	for r, ck := range clocks {
		if !eqTime(ck.Now(), want) {
			t.Errorf("after FP16 op: rank %d clock %v, want %v", r, ck.Now(), want)
		}
	}
}

func TestAllGatherChargesLargestPayload(t *testing.T) {
	const g = 3
	c, clocks := newCostComm(g)
	sizes := []int{2, 7, 4}
	runRanks(g, func(rank int) {
		c.AllGatherInts(rank, make([]int, sizes[rank]))
	})
	want := testLink.RingAllGatherSeconds(g, int64(4*7))
	for r, ck := range clocks {
		if !eqTime(ck.Now(), want) {
			t.Errorf("ints: rank %d clock %v, want %v", r, ck.Now(), want)
		}
	}
	runRanks(g, func(rank int) {
		c.AllGatherFloats(rank, make([]float32, sizes[rank]), nil)
	})
	want += testLink.RingAllGatherSeconds(g, int64(4*7))
	for r, ck := range clocks {
		if !eqTime(ck.Now(), want) {
			t.Errorf("floats: rank %d clock %v, want %v", r, ck.Now(), want)
		}
	}
}

func TestBroadcastCharges(t *testing.T) {
	const g, n = 4, 256
	c, clocks := newCostComm(g)
	runRanks(g, func(rank int) {
		c.Broadcast(rank, 0, make([]float32, n))
	})
	want := testLink.TreeBroadcastSeconds(g, int64(4*n))
	for r, ck := range clocks {
		if !eqTime(ck.Now(), want) {
			t.Errorf("rank %d clock %v, want %v", r, ck.Now(), want)
		}
	}
}

// TestBarrierMaxSynchronizes: a barrier costs no bytes but drags every
// clock up to the slowest rank.
func TestBarrierMaxSynchronizes(t *testing.T) {
	const g = 4
	c, clocks := newCostComm(g)
	for r, ck := range clocks {
		ck.Advance(float64(r)) // rank 3 is the straggler-setter at t=3
	}
	runRanks(g, func(rank int) { c.Barrier() })
	for r, ck := range clocks {
		if !eqTime(ck.Now(), 3) {
			t.Errorf("rank %d clock %v after barrier, want 3", r, ck.Now())
		}
	}
	// Reusable across generations.
	runRanks(g, func(rank int) { c.Barrier() })
	for r, ck := range clocks {
		if !eqTime(ck.Now(), 3) {
			t.Errorf("second barrier moved rank %d to %v", r, ck.Now())
		}
	}
}

// TestDeterministicVirtualTime runs the same mixed collective sequence on
// fresh communicators and demands bit-identical clocks, whatever the
// scheduler did.
func TestDeterministicVirtualTime(t *testing.T) {
	run := func() []float64 {
		const g = 5
		c, clocks := newCostComm(g)
		runRanks(g, func(rank int) {
			x := make([]float32, 333)
			c.AllReduce(rank, x, nil)
			c.AllGatherInts(rank, make([]int, 10+rank))
			c.Barrier()
			c.AllGatherFloats(rank, make([]float32, 50), half.NewScaler(1))
			c.Broadcast(rank, 2, x)
			c.AgreeAllOK(rank, true)
		})
		out := make([]float64, g)
		for i, ck := range clocks {
			out[i] = ck.Now()
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("virtual time not reproducible: run1[%d]=%v run2[%d]=%v", i, a[i], i, b[i])
		}
		if a[i] <= 0 {
			t.Fatalf("clock %d never advanced", i)
		}
	}
}

// TestNilCostModelLeavesNoTrace: without AttachCost the collectives must
// not care about clocks at all (and Cost() reports nil).
func TestNilCostModelLeavesNoTrace(t *testing.T) {
	const g = 3
	c := New(g)
	if c.Cost() != nil {
		t.Fatal("fresh comm must have no cost model")
	}
	runRanks(g, func(rank int) {
		x := make([]float32, 64)
		c.AllReduce(rank, x, nil)
		c.Barrier()
	})
}

func TestAttachCostValidatesClockCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched clock count must panic")
		}
	}()
	New(3).AttachCost(&CostModel{Link: testLink, Clocks: make([]*vclock.Clock, 2)})
}

// TestHierarchyAttachCost prices intra-group traffic on the PCIe link and
// the leaders' ring on InfiniBand, sharing one global clock set.
func TestHierarchyAttachCost(t *testing.T) {
	const g, gs, n = 4, 2, 100
	intra := perfmodel.LinkCost{Alpha: 0, BytesPerSec: 8e9}
	inter := perfmodel.LinkCost{Alpha: 0, BytesPerSec: 1e9}
	h := NewHierarchy(g, gs)
	clocks := make([]*vclock.Clock, g)
	for i := range clocks {
		clocks[i] = new(vclock.Clock)
	}
	h.AttachCost(intra, inter, clocks)

	runRanks(g, func(rank int) {
		grp := h.Group(rank)
		_, gr := h.GroupOf(rank)
		x := make([]float32, n)
		grp.AllReduce(gr, x, nil)
		if h.IsLeader(rank) {
			gid, _ := h.GroupOf(rank)
			h.Leaders().AllReduce(gid, x, nil)
		}
	})

	intraDur := intra.RingAllReduceSeconds(gs, n, 4)
	interDur := inter.RingAllReduceSeconds(g/gs, n, 4)
	for r, ck := range clocks {
		want := intraDur
		if h.IsLeader(r) {
			want += interDur
		}
		if !eqTime(ck.Now(), want) {
			t.Errorf("rank %d clock %v, want %v (leader=%v)", r, ck.Now(), want, h.IsLeader(r))
		}
	}
}

func TestHierarchyAttachCostValidatesClockCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched clock count must panic")
		}
	}()
	NewHierarchy(4, 2).AttachCost(testLink, testLink, make([]*vclock.Clock, 3))
}
