// Package collective implements the MPI-style collectives the paper's
// training workflow uses — ALLREDUCE for dense RNN gradients, ALLGATHER for
// embedding-layer exchanges — over in-process ranks (one goroutine per
// simulated GPU).
//
// AllReduce is a genuine ring all-reduce (Gibiansky-style, the "efficient
// implementations use a ring all-reduce technique" of §II-B): buffers are
// chunked, and each rank exchanges chunks with its neighbours over Go
// channels through a scatter-reduce phase followed by an all-gather phase.
// Per-rank traffic is therefore the real 2·(G−1)/G·bytes of the algorithm,
// measured, not modeled.
//
// The ring path is zero-copy and zero-allocation: each hop sends the chunk
// subslice itself over the channel (the ring's dependency chain guarantees
// the sender never rewrites a chunk before its receiver has consumed it),
// so there is no payload staging at all, guarded by testing.AllocsPerRun
// in the tests. Blackboard stash buffers for the gather/broadcast paths
// come from a communicator-wide sync.Pool arena and are recycled across
// operations. See also AllReduceAsync (async.go) for the bucketed,
// overlap-capable variant of the same ring.
//
// Gathers use a shared blackboard with two barriers; their per-rank traffic
// is accounted with the standard ring-allgather volume (G−1)/G·G·bytes.
//
// Every operation optionally runs with FP16 wire compression (§III-C): the
// payload is down-cast before each hop and up-cast after, halving measured
// wire bytes and applying real FP16 rounding to the values.
package collective

import (
	"fmt"
	"sync"
	"time"

	"zipflm/internal/telemetry"
)

// Wire models a lossy wire precision for float payloads. Every synchronous
// collective (and every async bucket) optionally round-trips its payload
// through a Wire at the points the data crosses the simulated interconnect,
// and accounts wire bytes through WireBytes instead of assuming 4 bytes per
// element. half.Scaler (FP16 compression-scaling, §III-C) and
// compress.Quant8 (8-bit per-chunk stochastic quantization) both implement
// it; a nil Wire keeps FP32 on the wire.
//
// Callers must pass a nil interface — not a typed nil pointer wrapped in the
// interface — to mean "no compression".
type Wire interface {
	// RoundTrip applies one wire crossing to x in place: compress, then
	// decompress. It must be deterministic for a given receiver state.
	RoundTrip(x []float32)
	// WireBytes reports how many bytes n elements occupy on the wire,
	// including any side data (scales, headers) the format carries.
	WireBytes(n int) int
}

// wireSize returns the wire footprint of n float32 elements under wire
// (4 bytes per element when wire is nil).
func wireSize(wire Wire, n int) int64 {
	if wire == nil {
		return int64(4 * n)
	}
	return int64(wire.WireBytes(n))
}

// Comm coordinates collectives across g ranks. One Comm is shared by all
// rank goroutines; each method is called by every rank with its own rank id
// and returns only when the collective completes on that rank.
type Comm struct {
	g int

	// ring[r] is the channel rank (r-1+g)%g uses to send to rank r for
	// synchronous collectives. asyncRing is the same topology reserved for
	// the bucketed AllReduceAsync path, so an in-flight async bucket can
	// never interleave its hops with a synchronous ring operation. Hops
	// carry chunk subslices directly (zero-copy; see ringAllReduce).
	ring      []chan []float32
	asyncRing []chan []float32

	// buf / intBuf / byteBuf pool float32, int and byte blackboard stash
	// buffers, recycled once their collective completes, which keeps the
	// gather/broadcast paths allocation-free apart from the caller-owned
	// result copies.
	buf     sync.Pool
	intBuf  sync.Pool
	byteBuf sync.Pool

	// blackboard for gather/broadcast style ops. Entries are pooled
	// buffers owned by the writing rank; a rank recycles its previous
	// entry the next time it stashes (by then the prior collective's
	// closing barrier guarantees no reader still holds it).
	mu     sync.Mutex
	intsBB []*[]int
	f32BB  []*[]float32
	byteBB []*[]byte

	// barrier closes every synchronous collective; asyncBarrier closes
	// every async bucket (bucket k on one rank pairs with bucket k on
	// every other, since bucketing is deterministic). The closing barrier
	// is what makes the zero-copy ring sound: a rank's chunks are aliased
	// by in-flight messages until every rank's pass completes, so no
	// operation returns — and no caller may rewrite its buffer — before
	// then.
	barrier      *Barrier
	asyncBarrier *Barrier

	// stats counts synchronous collectives; asyncStats counts
	// AllReduceAsync buckets. They are kept apart so a phase can
	// snapshot-difference its own synchronous traffic (the §III-A
	// exchange cost) without racing against bucket runners that post at
	// arbitrary times; RankStats/MaxStats report the merged totals.
	stats      []Stats // per-rank
	asyncStats []Stats // per-rank

	// async bucket queues, one per rank (async.go).
	async       []asyncQueue
	bucketElems int

	// cost, when non-nil, prices every synchronous collective onto the
	// participating ranks' virtual clocks (cost.go). nil keeps the hot
	// paths on the exact pre-simulation code path.
	cost *CostModel

	// tel, when non-nil, posts per-operation calls/bytes/durations to a
	// telemetry registry (telemetry.go). Purely observational: nil keeps
	// every operation on the exact uninstrumented code path.
	tel *commTelemetry

	// trace, when non-nil, records one span per synchronous collective per
	// rank (cat "collective", tid = rank), stamped with wall time and the
	// rank's virtual clock — the per-op detail the critical-path analyzer
	// attributes wire time from. Purely observational, like tel.
	trace *telemetry.Tracer
}

// Stats tallies traffic a single rank has sent, by operation.
type Stats struct {
	AllReduceCalls int64
	AllReduceBytes int64
	AllGatherCalls int64
	AllGatherBytes int64
	BroadcastCalls int64
	BroadcastBytes int64
}

// Total returns bytes across all operation types.
func (s Stats) Total() int64 { return s.AllReduceBytes + s.AllGatherBytes + s.BroadcastBytes }

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.AllReduceCalls += o.AllReduceCalls
	s.AllReduceBytes += o.AllReduceBytes
	s.AllGatherCalls += o.AllGatherCalls
	s.AllGatherBytes += o.AllGatherBytes
	s.BroadcastCalls += o.BroadcastCalls
	s.BroadcastBytes += o.BroadcastBytes
}

// Sub returns s minus o (for snapshot differencing around a phase).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		AllReduceCalls: s.AllReduceCalls - o.AllReduceCalls,
		AllReduceBytes: s.AllReduceBytes - o.AllReduceBytes,
		AllGatherCalls: s.AllGatherCalls - o.AllGatherCalls,
		AllGatherBytes: s.AllGatherBytes - o.AllGatherBytes,
		BroadcastCalls: s.BroadcastCalls - o.BroadcastCalls,
		BroadcastBytes: s.BroadcastBytes - o.BroadcastBytes,
	}
}

// New returns a communicator for g ranks.
func New(g int) *Comm {
	if g <= 0 {
		panic("collective: need at least one rank")
	}
	c := &Comm{
		g:            g,
		ring:         make([]chan []float32, g),
		asyncRing:    make([]chan []float32, g),
		intsBB:       make([]*[]int, g),
		f32BB:        make([]*[]float32, g),
		byteBB:       make([]*[]byte, g),
		barrier:      NewBarrier(g),
		asyncBarrier: NewBarrier(g),
		stats:        make([]Stats, g),
		asyncStats:   make([]Stats, g),
		async:        make([]asyncQueue, g),
		bucketElems:  DefaultBucketBytes / 4,
	}
	for i := range c.ring {
		c.ring[i] = make(chan []float32, 1)
		c.asyncRing[i] = make(chan []float32, 1)
	}
	return c
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.g }

// RankStats returns a copy of the traffic counters for one rank,
// synchronous and asynchronous traffic merged.
func (c *Comm) RankStats(rank int) Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats[rank]
	s.Add(c.asyncStats[rank])
	return s
}

// SyncStats returns one rank's counters for synchronous collectives only,
// excluding AllReduceAsync buckets. Phase accounting (e.g. an exchange
// engine differencing its own wire cost) uses this so concurrently
// in-flight async buckets — which post their bytes at arbitrary times —
// cannot leak into the window.
func (c *Comm) SyncStats(rank int) Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats[rank]
}

// MaxStats returns, per field, the maximum over ranks — the per-GPU traffic
// figure the paper's complexity bounds describe.
func (c *Comm) MaxStats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var m Stats
	for r := range c.stats {
		s := c.stats[r]
		s.Add(c.asyncStats[r])
		if s.AllReduceBytes > m.AllReduceBytes {
			m.AllReduceBytes = s.AllReduceBytes
		}
		if s.AllGatherBytes > m.AllGatherBytes {
			m.AllGatherBytes = s.AllGatherBytes
		}
		if s.BroadcastBytes > m.BroadcastBytes {
			m.BroadcastBytes = s.BroadcastBytes
		}
		if s.AllReduceCalls > m.AllReduceCalls {
			m.AllReduceCalls = s.AllReduceCalls
		}
		if s.AllGatherCalls > m.AllGatherCalls {
			m.AllGatherCalls = s.AllGatherCalls
		}
		if s.BroadcastCalls > m.BroadcastCalls {
			m.BroadcastCalls = s.BroadcastCalls
		}
	}
	return m
}

// Barrier blocks until every rank has reached it. With a cost model
// attached, the participating clocks synchronize to their maximum — the
// max-synchronization a real barrier imposes on wall-clock.
func (c *Comm) Barrier() {
	c.barrier.Wait()
	if cm := c.cost; cm != nil {
		// Barrier has no rank argument, so one charging rank is elected
		// per round; the charge itself (sync to max) is rank-independent,
		// keeping virtual times deterministic.
		if cm.elect(c.g) {
			cm.Charge(0)
		}
		if c.g > 1 {
			c.barrier.Wait()
		}
	}
}

// getBuf checks a float32 buffer of length n out of the arena, allocating
// only when the pool has nothing large enough (start-up, or a new high-water
// payload size).
func (c *Comm) getBuf(n int) *[]float32 {
	if p, ok := c.buf.Get().(*[]float32); ok && p != nil {
		if cap(*p) >= n {
			*p = (*p)[:n]
			return p
		}
	}
	s := make([]float32, n)
	return &s
}

// putBuf returns a buffer to the arena.
func (c *Comm) putBuf(p *[]float32) { c.buf.Put(p) }

// getIntBuf / putIntBuf are the int-payload arena used by the index
// blackboard.
func (c *Comm) getIntBuf(n int) *[]int {
	if p, ok := c.intBuf.Get().(*[]int); ok && p != nil {
		if cap(*p) >= n {
			*p = (*p)[:n]
			return p
		}
	}
	s := make([]int, n)
	return &s
}

func (c *Comm) putIntBuf(p *[]int) { c.intBuf.Put(p) }

// stashInts publishes a copy of local as rank's blackboard entry, recycling
// the rank's previous entry into the arena (safe: the previous collective's
// closing barrier means no reader still holds it).
func (c *Comm) stashInts(rank int, local []int) {
	p := c.getIntBuf(len(local))
	copy(*p, local)
	c.mu.Lock()
	if old := c.intsBB[rank]; old != nil {
		c.putIntBuf(old)
	}
	c.intsBB[rank] = p
	c.mu.Unlock()
}

// stashFloats is the float32 counterpart of stashInts; when wire is non-nil
// the stashed copy is FP16 round-tripped (the payload crosses the wire once
// in half precision).
func (c *Comm) stashFloats(rank int, local []float32, wire Wire) {
	p := c.getBuf(len(local))
	copy(*p, local)
	if wire != nil {
		wire.RoundTrip(*p)
	}
	c.mu.Lock()
	if old := c.f32BB[rank]; old != nil {
		c.putBuf(old)
	}
	c.f32BB[rank] = p
	c.mu.Unlock()
}

// chunkRange returns the [lo,hi) bounds of chunk i when n elements are split
// into g nearly equal contiguous chunks (the first n%g chunks are one
// element longer). Pure arithmetic — no allocation on the ring hot path.
func chunkRange(n, g, i int) (lo, hi int) {
	base, rem := n/g, n%g
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// addAllReduceStats records calls ring operations totalling bytes on rank.
func (c *Comm) addAllReduceStats(rank int, calls, bytes int64) {
	c.mu.Lock()
	st := &c.stats[rank]
	st.AllReduceCalls += calls
	st.AllReduceBytes += bytes
	c.mu.Unlock()
}

// ringAllReduce runs one ring all-reduce over the logical collection of
// parts, on the given channel set. Each part is chunked independently with
// the exact bounds the single-tensor path uses and each (hop, part) pair is
// exchanged as its own message, so both the reduced values (addition order,
// FP16 rounding points) and the byte accounting are bit-identical whether
// tensors travel alone through AllReduce or fused in an AllReduceAsync
// bucket. Returns the bytes this rank put on the wire.
//
// The exchange is zero-copy: hops send the chunk subslice itself, not a
// buffer copy, so the ring path performs zero allocations and no payload
// staging at all. Safety rests on the ring's own dependency chain: a chunk
// a rank has sent is never written by that rank again until the incoming
// message of a later hop — which transitively happens after the receiver
// consumed the sent chunk — so sender-side mutations and receiver-side
// reads can never overlap. (With FP16 the sender rounds its chunk in place
// *before* sending; the unrounded partial sum is dead at that point —
// every scatter-sent chunk is later overwritten wholesale by the
// all-gather phase.)
func (c *Comm) ringAllReduce(ring []chan []float32, rank int, parts [][]float32, wire Wire) int64 {
	g := c.g
	if g == 1 {
		return 0
	}
	next := (rank + 1) % g
	var bytes int64

	// Scatter-reduce: after step t, chunk (rank−t−1 mod G) holds t+2
	// ranks' partial sums on this rank.
	for step := 0; step < g-1; step++ {
		sendIdx := ((rank-step)%g + g) % g
		recvIdx := ((rank-step-1)%g + g) % g
		for pi, p := range parts {
			lo, hi := chunkRange(len(p), g, sendIdx)
			seg := p[lo:hi]
			if wire != nil {
				// Round in place: this partial sum is forwarded now and
				// overwritten by the all-gather phase later, so the
				// unrounded value is dead.
				wire.RoundTrip(seg)
			}
			bytes += wireSize(wire, hi-lo)
			ring[next] <- seg
			in := <-ring[rank]
			qlo, qhi := chunkRange(len(parts[pi]), g, recvIdx)
			dst := parts[pi][qlo:qhi]
			if len(in) != len(dst) {
				panic(fmt.Sprintf("collective: ring chunk mismatch %d != %d", len(in), len(dst)))
			}
			for i, v := range in {
				dst[i] += v
			}
		}
	}
	// After scatter-reduce this rank owns the fully reduced chunk
	// (rank+1) mod G. With a lossy wire every other rank receives the
	// owner's rounded bytes; round the owner's copy identically so all
	// ranks end bit-identical. The all-gather phase forwards those exact
	// bytes without re-rounding (one wire crossing per value), so replica
	// identity never depends on the wire format being idempotent.
	if wire != nil {
		own := (rank + 1) % g
		for _, p := range parts {
			lo, hi := chunkRange(len(p), g, own)
			wire.RoundTrip(p[lo:hi])
		}
	}
	// All-gather: circulate the fully reduced chunks. Payloads were
	// wire-rounded once by their owning rank above, so no further rounding
	// happens here.
	for step := 0; step < g-1; step++ {
		sendIdx := ((rank-step+1)%g + g) % g
		recvIdx := ((rank-step)%g + g) % g
		for pi, p := range parts {
			lo, hi := chunkRange(len(p), g, sendIdx)
			bytes += wireSize(wire, hi-lo)
			ring[next] <- p[lo:hi]
			in := <-ring[rank]
			qlo, qhi := chunkRange(len(parts[pi]), g, recvIdx)
			if len(in) != qhi-qlo {
				panic(fmt.Sprintf("collective: ring chunk mismatch %d != %d", len(in), qhi-qlo))
			}
			copy(parts[pi][qlo:qhi], in)
		}
	}
	return bytes
}

// AllReduce sums x elementwise across all ranks; on return every rank's x
// holds the global sum. wire == nil keeps FP32 on the wire; a non-nil Wire
// (FP16 compression-scaling of §III-C, 8-bit quantization, …) is applied to
// every hop: each scatter-reduce hop rounds the partial sum it forwards (so
// a chunk's value is re-rounded up to G−1 times, by different ranks, and
// lossy-wire error compounds with G exactly as on real fabrics), and each
// fully reduced chunk is rounded once more by its owning rank before the
// all-gather forwards those bytes verbatim. Replica identity rests on that
// final owner round plus verbatim forwarding — not on any exactly-once
// property — which is also why per-rank Wire *instances* may differ (e.g.
// rank-seeded stochastic quantizers) as long as the format matches. All
// ranks must pass equal-length slices.
//
// The implementation is a ring all-reduce: G−1 scatter-reduce steps then
// G−1 all-gather steps, each moving one 1/G-sized chunk to the next rank —
// zero-copy and zero-allocation. The closing barrier guarantees that on
// return no peer still reads this rank's buffer, so the caller may mutate
// x immediately.
func (c *Comm) AllReduce(rank int, x []float32, wire Wire) {
	var t0 time.Time
	var v0 float64
	if c.tel != nil || c.trace != nil {
		t0 = time.Now()
		v0 = c.clockNow(rank)
	}
	var parts [1][]float32
	parts[0] = x
	bytes := c.ringAllReduce(c.ring, rank, parts[:], wire)
	if c.g > 1 {
		c.barrier.Wait()
	}
	c.charge(rank, func(cm *CostModel) {
		chunk := (len(x) + c.g - 1) / c.g
		cm.Charge(cm.Link.RingAllReduceSecondsBytes(c.g, wireSize(wire, chunk)))
	})
	c.addAllReduceStats(rank, 1, bytes)
	if c.tel != nil {
		c.tel.record("allreduce", wireLabel(wire), 1, bytes, int64(time.Since(t0)))
	}
	c.traceOp("allreduce", rank, t0, v0)
}

// AllGatherInts gathers each rank's (possibly different-length) int slice;
// every rank receives the per-rank slices in rank order. This is the cheap
// Θ(G·K) index gather of §III-A step 3. The returned inner slices are
// copies owned by the caller (the blackboard stash itself is pooled).
func (c *Comm) AllGatherInts(rank int, local []int) [][]int {
	var t0 time.Time
	var v0 float64
	if c.tel != nil || c.trace != nil {
		t0 = time.Now()
		v0 = c.clockNow(rank)
	}
	c.stashInts(rank, local)
	c.barrier.Wait()

	out := make([][]int, c.g)
	var totalElems, maxElems int
	c.mu.Lock()
	for r, s := range c.intsBB {
		var src []int
		if s != nil {
			src = *s
		}
		cp := make([]int, len(src))
		copy(cp, src)
		out[r] = cp
		totalElems += len(src)
		if len(src) > maxElems {
			maxElems = len(src)
		}
	}
	// Ring all-gather volume per rank: (G−1)/G of the total payload,
	// with indices on the wire as int32 (4 bytes) as real stacks do.
	bytes := int64(4*totalElems) * int64(c.g-1) / int64(c.g)
	c.stats[rank].AllGatherCalls++
	c.stats[rank].AllGatherBytes += bytes
	c.mu.Unlock()
	c.barrier.Wait()
	c.charge(rank, func(cm *CostModel) {
		cm.Charge(cm.Link.RingAllGatherSeconds(c.g, int64(4*maxElems)))
	})
	if c.tel != nil {
		c.tel.record("allgather_ints", "int32", 1, bytes, int64(time.Since(t0)))
	}
	c.traceOp("allgather_ints", rank, t0, v0)
	return out
}

// AllGatherFloats gathers each rank's float32 slice to every rank, FP32 or
// FP16 on the wire. This is the expensive baseline exchange of §II-B: the
// result materializes G dense gradient blocks on every rank.
func (c *Comm) AllGatherFloats(rank int, local []float32, wire Wire) [][]float32 {
	var t0 time.Time
	var v0 float64
	if c.tel != nil || c.trace != nil {
		t0 = time.Now()
		v0 = c.clockNow(rank)
	}
	c.stashFloats(rank, local, wire)
	c.barrier.Wait()

	out := make([][]float32, c.g)
	var totalBytes, maxBytes int64
	c.mu.Lock()
	for r, s := range c.f32BB {
		var src []float32
		if s != nil {
			src = *s
		}
		cp := make([]float32, len(src))
		copy(cp, src)
		out[r] = cp
		b := wireSize(wire, len(src))
		totalBytes += b
		if b > maxBytes {
			maxBytes = b
		}
	}
	bytes := totalBytes * int64(c.g-1) / int64(c.g)
	c.stats[rank].AllGatherCalls++
	c.stats[rank].AllGatherBytes += bytes
	c.mu.Unlock()
	c.barrier.Wait()
	c.charge(rank, func(cm *CostModel) {
		cm.Charge(cm.Link.RingAllGatherSeconds(c.g, maxBytes))
	})
	if c.tel != nil {
		c.tel.record("allgather_floats", wireLabel(wire), 1, bytes, int64(time.Since(t0)))
	}
	c.traceOp("allgather_floats", rank, t0, v0)
	return out
}

// Broadcast distributes root's buffer to every rank (into each rank's x,
// which must have the root's length).
func (c *Comm) Broadcast(rank, root int, x []float32) {
	var t0 time.Time
	var v0 float64
	if c.tel != nil || c.trace != nil {
		t0 = time.Now()
		v0 = c.clockNow(rank)
	}
	if rank == root {
		c.stashFloats(root, x, nil)
	}
	c.barrier.Wait()
	c.mu.Lock()
	var src []float32
	if p := c.f32BB[root]; p != nil {
		src = *p
	}
	c.mu.Unlock()
	if len(src) != len(x) {
		panic(fmt.Sprintf("collective: Broadcast length mismatch on rank %d: %d != %d", rank, len(x), len(src)))
	}
	if rank != root {
		copy(x, src)
	}
	c.mu.Lock()
	c.stats[rank].BroadcastCalls++
	if rank == root {
		// Tree broadcast: root sends ~1 copy per subtree; account
		// the standard log-tree per-rank volume of one payload.
		c.stats[rank].BroadcastBytes += int64(4 * len(x))
	}
	c.mu.Unlock()
	c.barrier.Wait()
	c.charge(rank, func(cm *CostModel) {
		cm.Charge(cm.Link.TreeBroadcastSeconds(c.g, int64(4*len(x))))
	})
	if c.tel != nil {
		var bytes int64
		if rank == root {
			bytes = int64(4 * len(x))
		}
		c.tel.record("broadcast", "fp32", 1, bytes, int64(time.Since(t0)))
	}
	c.traceOp("broadcast", rank, t0, v0)
}

// AgreeAllOK is a control-plane consensus: every rank reports a boolean and
// all ranks learn whether every rank said true. Exchange engines use it to
// fail collectively when any rank cannot allocate scratch memory, so no
// rank blocks in a data collective its peers abandoned. Control-plane
// traffic is excluded from the data-plane byte accounting.
func (c *Comm) AgreeAllOK(rank int, ok bool) bool {
	var vote [1]int
	if ok {
		vote[0] = 1
	}
	c.stashInts(rank, vote[:])
	c.barrier.Wait()
	all := true
	c.mu.Lock()
	for _, s := range c.intsBB {
		if s == nil || len(*s) != 1 || (*s)[0] == 0 {
			all = false
		}
	}
	c.mu.Unlock()
	c.barrier.Wait()
	// Control-plane consensus: excluded from byte accounting, but it is a
	// synchronization point, so clocks max-sync (zero-byte charge).
	c.charge(rank, func(cm *CostModel) { cm.Charge(0) })
	return all
}

// Barrier is a reusable counting barrier for a fixed number of parties.
type Barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
}

// NewBarrier returns a barrier for n parties.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic("collective: barrier needs at least one party")
	}
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n parties have called Wait, then releases them all.
// The barrier is reusable across generations.
func (b *Barrier) Wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
