// Package collective implements the MPI-style collectives the paper's
// training workflow uses — ALLREDUCE for dense RNN gradients, ALLGATHER for
// embedding-layer exchanges — over in-process ranks (one goroutine per
// simulated GPU).
//
// AllReduce is a genuine ring all-reduce (Gibiansky-style, the "efficient
// implementations use a ring all-reduce technique" of §II-B): buffers are
// chunked, and each rank exchanges chunks with its neighbours over Go
// channels through a scatter-reduce phase followed by an all-gather phase.
// Per-rank traffic is therefore the real 2·(G−1)/G·bytes of the algorithm,
// measured, not modeled.
//
// Gathers use a shared blackboard with two barriers; their per-rank traffic
// is accounted with the standard ring-allgather volume (G−1)/G·G·bytes.
//
// Every operation optionally runs with FP16 wire compression (§III-C): the
// payload is down-cast before each hop and up-cast after, halving measured
// wire bytes and applying real FP16 rounding to the values.
package collective

import (
	"fmt"
	"sync"

	"zipflm/internal/half"
)

// Comm coordinates collectives across g ranks. One Comm is shared by all
// rank goroutines; each method is called by every rank with its own rank id
// and returns only when the collective completes on that rank.
type Comm struct {
	g int

	// ring[r] is the channel rank (r-1+g)%g uses to send to rank r.
	ring []chan []float32

	// blackboard for gather/broadcast style ops.
	mu     sync.Mutex
	intsBB [][]int
	f32BB  [][]float32

	barrier *Barrier

	stats []Stats // per-rank
}

// Stats tallies traffic a single rank has sent, by operation.
type Stats struct {
	AllReduceCalls int64
	AllReduceBytes int64
	AllGatherCalls int64
	AllGatherBytes int64
	BroadcastCalls int64
	BroadcastBytes int64
}

// Total returns bytes across all operation types.
func (s Stats) Total() int64 { return s.AllReduceBytes + s.AllGatherBytes + s.BroadcastBytes }

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.AllReduceCalls += o.AllReduceCalls
	s.AllReduceBytes += o.AllReduceBytes
	s.AllGatherCalls += o.AllGatherCalls
	s.AllGatherBytes += o.AllGatherBytes
	s.BroadcastCalls += o.BroadcastCalls
	s.BroadcastBytes += o.BroadcastBytes
}

// Sub returns s minus o (for snapshot differencing around a phase).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		AllReduceCalls: s.AllReduceCalls - o.AllReduceCalls,
		AllReduceBytes: s.AllReduceBytes - o.AllReduceBytes,
		AllGatherCalls: s.AllGatherCalls - o.AllGatherCalls,
		AllGatherBytes: s.AllGatherBytes - o.AllGatherBytes,
		BroadcastCalls: s.BroadcastCalls - o.BroadcastCalls,
		BroadcastBytes: s.BroadcastBytes - o.BroadcastBytes,
	}
}

// New returns a communicator for g ranks.
func New(g int) *Comm {
	if g <= 0 {
		panic("collective: need at least one rank")
	}
	c := &Comm{
		g:       g,
		ring:    make([]chan []float32, g),
		intsBB:  make([][]int, g),
		f32BB:   make([][]float32, g),
		barrier: NewBarrier(g),
		stats:   make([]Stats, g),
	}
	for i := range c.ring {
		c.ring[i] = make(chan []float32, 1)
	}
	return c
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.g }

// RankStats returns a copy of the traffic counters for one rank.
func (c *Comm) RankStats(rank int) Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats[rank]
}

// MaxStats returns, per field, the maximum over ranks — the per-GPU traffic
// figure the paper's complexity bounds describe.
func (c *Comm) MaxStats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var m Stats
	for _, s := range c.stats {
		if s.AllReduceBytes > m.AllReduceBytes {
			m.AllReduceBytes = s.AllReduceBytes
		}
		if s.AllGatherBytes > m.AllGatherBytes {
			m.AllGatherBytes = s.AllGatherBytes
		}
		if s.BroadcastBytes > m.BroadcastBytes {
			m.BroadcastBytes = s.BroadcastBytes
		}
		if s.AllReduceCalls > m.AllReduceCalls {
			m.AllReduceCalls = s.AllReduceCalls
		}
		if s.AllGatherCalls > m.AllGatherCalls {
			m.AllGatherCalls = s.AllGatherCalls
		}
		if s.BroadcastCalls > m.BroadcastCalls {
			m.BroadcastCalls = s.BroadcastCalls
		}
	}
	return m
}

func (c *Comm) addStats(rank int, f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats[rank])
	c.mu.Unlock()
}

// Barrier blocks until every rank has reached it.
func (c *Comm) Barrier() { c.barrier.Wait() }

// chunkBounds splits length n into c.g nearly equal contiguous chunks and
// returns the boundary offsets (len c.g+1).
func (c *Comm) chunkBounds(n int) []int {
	bounds := make([]int, c.g+1)
	base, rem := n/c.g, n%c.g
	off := 0
	for i := 0; i < c.g; i++ {
		bounds[i] = off
		off += base
		if i < rem {
			off++
		}
	}
	bounds[c.g] = n
	return bounds
}

// AllReduce sums x elementwise across all ranks; on return every rank's x
// holds the global sum. wire == nil keeps FP32 on the wire; a non-nil scaler
// applies FP16 compression-scaling to every hop (§III-C). All ranks must
// pass equal-length slices.
//
// The implementation is a ring all-reduce: G−1 scatter-reduce steps then
// G−1 all-gather steps, each moving one 1/G-sized chunk to the next rank.
func (c *Comm) AllReduce(rank int, x []float32, wire *half.Scaler) {
	if c.g == 1 {
		c.addStats(rank, func(s *Stats) { s.AllReduceCalls++ })
		return
	}
	bounds := c.chunkBounds(len(x))
	chunk := func(i int) []float32 { return x[bounds[i]:bounds[i+1]] }
	next := (rank + 1) % c.g

	send := func(data []float32) {
		payload := make([]float32, len(data))
		copy(payload, data)
		if wire != nil {
			// Apply real FP16 rounding to the hop.
			wire.RoundTrip(payload)
			c.addStats(rank, func(s *Stats) { s.AllReduceBytes += int64(half.Bytes(len(payload))) })
		} else {
			c.addStats(rank, func(s *Stats) { s.AllReduceBytes += int64(4 * len(payload)) })
		}
		c.ring[next] <- payload
	}
	recv := func() []float32 { return <-c.ring[rank] }

	// Scatter-reduce: after step t, chunk (rank−t−1 mod G) holds t+2
	// ranks' partial sums on this rank.
	for step := 0; step < c.g-1; step++ {
		sendIdx := ((rank-step)%c.g + c.g) % c.g
		recvIdx := ((rank-step-1)%c.g + c.g) % c.g
		send(chunk(sendIdx))
		incoming := recv()
		dst := chunk(recvIdx)
		if len(incoming) != len(dst) {
			panic(fmt.Sprintf("collective: ring chunk mismatch %d != %d", len(incoming), len(dst)))
		}
		for i, v := range incoming {
			dst[i] += v
		}
	}
	// After scatter-reduce this rank owns the fully reduced chunk
	// (rank+1) mod G. With FP16 on the wire the copy every other rank
	// receives is rounded; round the owner's copy identically so all
	// ranks end bit-identical (FP16 round-tripping is idempotent, so the
	// value survives later forwarding hops unchanged).
	if wire != nil {
		wire.RoundTrip(chunk((rank + 1) % c.g))
	}
	// All-gather: circulate the fully reduced chunks.
	for step := 0; step < c.g-1; step++ {
		sendIdx := ((rank-step+1)%c.g + c.g) % c.g
		recvIdx := ((rank-step)%c.g + c.g) % c.g
		send(chunk(sendIdx))
		incoming := recv()
		copy(chunk(recvIdx), incoming)
	}
	c.addStats(rank, func(s *Stats) { s.AllReduceCalls++ })
}

// AllGatherInts gathers each rank's (possibly different-length) int slice;
// every rank receives the per-rank slices in rank order. This is the cheap
// Θ(G·K) index gather of §III-A step 3. The returned inner slices are
// copies owned by the caller.
func (c *Comm) AllGatherInts(rank int, local []int) [][]int {
	mine := make([]int, len(local))
	copy(mine, local)
	c.mu.Lock()
	c.intsBB[rank] = mine
	c.mu.Unlock()
	c.barrier.Wait()

	out := make([][]int, c.g)
	var totalElems int
	c.mu.Lock()
	for r, s := range c.intsBB {
		cp := make([]int, len(s))
		copy(cp, s)
		out[r] = cp
		totalElems += len(s)
	}
	c.mu.Unlock()
	// Ring all-gather volume per rank: (G−1)/G of the total payload,
	// with indices on the wire as int32 (4 bytes) as real stacks do.
	bytes := int64(4*totalElems) * int64(c.g-1) / int64(c.g)
	c.addStats(rank, func(s *Stats) {
		s.AllGatherCalls++
		s.AllGatherBytes += bytes
	})
	c.barrier.Wait()
	return out
}

// AllGatherFloats gathers each rank's float32 slice to every rank, FP32 or
// FP16 on the wire. This is the expensive baseline exchange of §II-B: the
// result materializes G dense gradient blocks on every rank.
func (c *Comm) AllGatherFloats(rank int, local []float32, wire *half.Scaler) [][]float32 {
	mine := make([]float32, len(local))
	copy(mine, local)
	if wire != nil {
		wire.RoundTrip(mine) // payload crosses the wire once in FP16
	}
	c.mu.Lock()
	c.f32BB[rank] = mine
	c.mu.Unlock()
	c.barrier.Wait()

	out := make([][]float32, c.g)
	var totalElems int
	c.mu.Lock()
	for r, s := range c.f32BB {
		cp := make([]float32, len(s))
		copy(cp, s)
		out[r] = cp
		totalElems += len(s)
	}
	c.mu.Unlock()
	perElem := int64(4)
	if wire != nil {
		perElem = 2
	}
	bytes := perElem * int64(totalElems) * int64(c.g-1) / int64(c.g)
	c.addStats(rank, func(s *Stats) {
		s.AllGatherCalls++
		s.AllGatherBytes += bytes
	})
	c.barrier.Wait()
	return out
}

// Broadcast distributes root's buffer to every rank (into each rank's x,
// which must have the root's length).
func (c *Comm) Broadcast(rank, root int, x []float32) {
	if rank == root {
		mine := make([]float32, len(x))
		copy(mine, x)
		c.mu.Lock()
		c.f32BB[root] = mine
		c.mu.Unlock()
	}
	c.barrier.Wait()
	c.mu.Lock()
	src := c.f32BB[root]
	c.mu.Unlock()
	if len(src) != len(x) {
		panic(fmt.Sprintf("collective: Broadcast length mismatch on rank %d: %d != %d", rank, len(x), len(src)))
	}
	if rank != root {
		copy(x, src)
	}
	c.addStats(rank, func(s *Stats) {
		s.BroadcastCalls++
		if rank == root {
			// Tree broadcast: root sends ~1 copy per subtree; account
			// the standard log-tree per-rank volume of one payload.
			s.BroadcastBytes += int64(4 * len(x))
		}
	})
	c.barrier.Wait()
}

// AgreeAllOK is a control-plane consensus: every rank reports a boolean and
// all ranks learn whether every rank said true. Exchange engines use it to
// fail collectively when any rank cannot allocate scratch memory, so no
// rank blocks in a data collective its peers abandoned. Control-plane
// traffic is excluded from the data-plane byte accounting.
func (c *Comm) AgreeAllOK(rank int, ok bool) bool {
	v := 0
	if ok {
		v = 1
	}
	c.mu.Lock()
	c.intsBB[rank] = []int{v}
	c.mu.Unlock()
	c.barrier.Wait()
	all := true
	c.mu.Lock()
	for _, s := range c.intsBB {
		if len(s) != 1 || s[0] == 0 {
			all = false
		}
	}
	c.mu.Unlock()
	c.barrier.Wait()
	return all
}

// Barrier is a reusable counting barrier for a fixed number of parties.
type Barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
}

// NewBarrier returns a barrier for n parties.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic("collective: barrier needs at least one party")
	}
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n parties have called Wait, then releases them all.
// The barrier is reusable across generations.
func (b *Barrier) Wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
