package collective

import "fmt"

// Hierarchy arranges g ranks into node-sized groups with their own
// communicators plus a leaders-only communicator — the topology of the
// paper's cluster (Table II: 8 GPUs per node on PCIe, nodes linked by FDR
// InfiniBand). Two-level collectives built on it keep most traffic on the
// fast intra-node links and send only one rank per node across the fabric.
type Hierarchy struct {
	// G is the total rank count, GroupSize the ranks per group (the last
	// group may be smaller when G is not divisible).
	G, GroupSize int
	// groups[i] is group i's communicator (size GroupSize or the
	// remainder).
	groups []*Comm
	// leaders is the communicator over rank 0 of every group.
	leaders *Comm
}

// NewHierarchy builds the two-level topology.
func NewHierarchy(g, groupSize int) *Hierarchy {
	if g <= 0 || groupSize <= 0 {
		panic("collective: NewHierarchy needs positive sizes")
	}
	if groupSize > g {
		groupSize = g
	}
	nGroups := (g + groupSize - 1) / groupSize
	h := &Hierarchy{G: g, GroupSize: groupSize}
	for i := 0; i < nGroups; i++ {
		size := groupSize
		if i == nGroups-1 {
			size = g - i*groupSize
		}
		h.groups = append(h.groups, New(size))
	}
	h.leaders = New(nGroups)
	return h
}

// NumGroups returns the group count.
func (h *Hierarchy) NumGroups() int { return len(h.groups) }

// GroupOf returns the group id and in-group rank of a global rank.
func (h *Hierarchy) GroupOf(rank int) (group, groupRank int) {
	if rank < 0 || rank >= h.G {
		panic(fmt.Sprintf("collective: rank %d outside hierarchy of %d", rank, h.G))
	}
	return rank / h.GroupSize, rank % h.GroupSize
}

// IsLeader reports whether the global rank leads its group.
func (h *Hierarchy) IsLeader(rank int) bool {
	_, gr := h.GroupOf(rank)
	return gr == 0
}

// Group returns the communicator of the given global rank's group.
func (h *Hierarchy) Group(rank int) *Comm {
	g, _ := h.GroupOf(rank)
	return h.groups[g]
}

// Leaders returns the leaders-only communicator; callers must translate the
// global rank to the leader rank (the group id).
func (h *Hierarchy) Leaders() *Comm { return h.leaders }

// InterNodeBytes returns the per-leader traffic that crossed the group
// boundary — the quantity the hierarchical exchange minimizes (only leaders
// appear on the inter-node fabric).
func (h *Hierarchy) InterNodeBytes() int64 {
	var m int64
	for r := 0; r < h.leaders.Size(); r++ {
		if b := h.leaders.RankStats(r).Total(); b > m {
			m = b
		}
	}
	return m
}

// IntraNodeBytes returns the max per-rank traffic inside any group.
func (h *Hierarchy) IntraNodeBytes() int64 {
	var m int64
	for _, grp := range h.groups {
		for r := 0; r < grp.Size(); r++ {
			if b := grp.RankStats(r).Total(); b > m {
				m = b
			}
		}
	}
	return m
}

// BroadcastInts distributes root's int slice to every rank of the
// communicator; non-root ranks receive a fresh copy (sizes need not be
// known in advance). The blackboard stash is pooled.
func (c *Comm) BroadcastInts(rank, root int, x []int) []int {
	if rank == root {
		c.stashInts(root, x)
	}
	c.barrier.Wait()
	c.mu.Lock()
	var src []int
	if p := c.intsBB[root]; p != nil {
		src = *p
	}
	out := make([]int, len(src))
	copy(out, src)
	c.stats[rank].BroadcastCalls++
	if rank == root {
		c.stats[rank].BroadcastBytes += int64(4 * len(x))
	}
	c.mu.Unlock()
	c.barrier.Wait()
	c.charge(rank, func(cm *CostModel) {
		cm.Charge(cm.Link.TreeBroadcastSeconds(c.g, int64(4*len(out))))
	})
	return out
}

// BroadcastFloatsVar distributes root's float32 slice to every rank,
// returning a fresh copy on every rank (length follows the root's slice).
// The blackboard stash is pooled.
func (c *Comm) BroadcastFloatsVar(rank, root int, x []float32) []float32 {
	if rank == root {
		c.stashFloats(root, x, nil)
	}
	c.barrier.Wait()
	c.mu.Lock()
	var src []float32
	if p := c.f32BB[root]; p != nil {
		src = *p
	}
	out := make([]float32, len(src))
	copy(out, src)
	c.stats[rank].BroadcastCalls++
	if rank == root {
		c.stats[rank].BroadcastBytes += int64(4 * len(x))
	}
	c.mu.Unlock()
	c.barrier.Wait()
	c.charge(rank, func(cm *CostModel) {
		cm.Charge(cm.Link.TreeBroadcastSeconds(c.g, int64(4*len(out))))
	})
	return out
}
