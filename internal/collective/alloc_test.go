package collective

import (
	"testing"

	"zipflm/internal/half"
)

// allocHarness drives one collective round per trigger on persistent rank
// goroutines, so testing.AllocsPerRun measures only the collective itself
// and not goroutine spawning.
type allocHarness struct {
	start []chan struct{}
	done  chan struct{}
	stop  chan struct{}
}

func newAllocHarness(g int, op func(rank int)) *allocHarness {
	h := &allocHarness{
		start: make([]chan struct{}, g),
		done:  make(chan struct{}, g),
		stop:  make(chan struct{}),
	}
	for r := 0; r < g; r++ {
		h.start[r] = make(chan struct{})
		go func(rank int) {
			for {
				select {
				case <-h.start[rank]:
					op(rank)
					h.done <- struct{}{}
				case <-h.stop:
					return
				}
			}
		}(r)
	}
	return h
}

// round triggers one collective on every rank and waits for completion.
func (h *allocHarness) round() {
	for _, ch := range h.start {
		ch <- struct{}{}
	}
	for range h.start {
		<-h.done
	}
}

func (h *allocHarness) close() { close(h.stop) }

// skipIfRace skips allocation guards under -race: the detector's
// instrumentation allocates and sync.Pool intentionally drops items there.
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation guards are not meaningful under -race")
	}
}

// TestAllReduceZeroAllocSteadyState is the allocation-regression guard on
// the pooled ring path: once the hop-buffer arena is warm, a full ring
// all-reduce across all ranks performs zero heap allocations. A future PR
// reintroducing per-hop payload allocation fails here immediately.
func TestAllReduceZeroAllocSteadyState(t *testing.T) {
	skipIfRace(t)
	for _, wire := range []Wire{nil, half.NewScaler(256)} {
		g := 4
		c := New(g)
		xs := make([][]float32, g)
		for r := range xs {
			xs[r] = make([]float32, 1000)
			for i := range xs[r] {
				xs[r][i] = float32(r + i)
			}
		}
		h := newAllocHarness(g, func(rank int) {
			c.AllReduce(rank, xs[rank], wire)
		})
		for i := 0; i < 3; i++ {
			h.round() // warm the arena
		}
		allocs := testing.AllocsPerRun(20, h.round)
		h.close()
		if allocs != 0 {
			t.Errorf("wire=%v: AllReduce ring path allocates %.1f objects per round, want 0", wire != nil, allocs)
		}
	}
}

// TestAllGatherIntsAllocBound guards the pooled blackboard path: the only
// permitted allocations are the caller-owned result slices (1 outer + G
// inner per rank); the stash and its recycling must not allocate at steady
// state.
func TestAllGatherIntsAllocBound(t *testing.T) {
	skipIfRace(t)
	g := 4
	c := New(g)
	local := make([][]int, g)
	for r := range local {
		local[r] = make([]int, 50+r)
	}
	h := newAllocHarness(g, func(rank int) {
		c.AllGatherInts(rank, local[rank])
	})
	for i := 0; i < 3; i++ {
		h.round()
	}
	allocs := testing.AllocsPerRun(20, h.round)
	h.close()
	limit := float64(g * (g + 1))
	if allocs > limit {
		t.Errorf("AllGatherInts allocates %.1f objects per round, want ≤ %.0f (result copies only)", allocs, limit)
	}
}

// TestAllGatherFloatsAllocBound is the float32 counterpart, FP16 wire
// included (RoundTrip must stay in place).
func TestAllGatherFloatsAllocBound(t *testing.T) {
	skipIfRace(t)
	for _, wire := range []Wire{nil, half.NewScaler(256)} {
		g := 4
		c := New(g)
		local := make([][]float32, g)
		for r := range local {
			local[r] = make([]float32, 200)
		}
		h := newAllocHarness(g, func(rank int) {
			c.AllGatherFloats(rank, local[rank], wire)
		})
		for i := 0; i < 3; i++ {
			h.round()
		}
		allocs := testing.AllocsPerRun(20, h.round)
		h.close()
		limit := float64(g * (g + 1))
		if allocs > limit {
			t.Errorf("wire=%v: AllGatherFloats allocates %.1f objects per round, want ≤ %.0f", wire != nil, allocs, limit)
		}
	}
}

// TestBroadcastAllocBound: the root stash is pooled; only stats and no
// payloads may allocate (receivers copy into caller-provided buffers).
func TestBroadcastAllocBound(t *testing.T) {
	skipIfRace(t)
	g := 4
	c := New(g)
	bufs := make([][]float32, g)
	for r := range bufs {
		bufs[r] = make([]float32, 300)
	}
	h := newAllocHarness(g, func(rank int) {
		c.Broadcast(rank, 0, bufs[rank])
	})
	for i := 0; i < 3; i++ {
		h.round()
	}
	allocs := testing.AllocsPerRun(20, h.round)
	h.close()
	if allocs != 0 {
		t.Errorf("Broadcast allocates %.1f objects per round, want 0", allocs)
	}
}
