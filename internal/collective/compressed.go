package collective

import (
	"fmt"
	"time"
)

// This file is the compressed collective path the gradient-compression
// subsystem (internal/compress) rides on. Sparsifying compressors (top-k
// with error feedback) cannot travel the ring all-reduce — summing two
// ranks' sparse selections densifies the payload mid-ring — so, like
// Deep-Gradient-Compression-style production stacks, the compressed
// all-reduce is an all-gather of per-rank opaque payloads followed by an
// identical local decode-and-sum on every rank:
//
//  1. each rank encodes its contribution into a payload (indices + values,
//     quantized blocks, … — the collective never interprets the bytes);
//  2. the payloads all-gather over the blackboard, accounted at the real
//     ring all-gather volume of the *compressed* bytes;
//  3. every rank zeroes its buffer and decodes all G payloads in rank
//     order, so the accumulated result — float addition in a fixed order —
//     is bit-identical on every rank and across reruns.
//
// Determinism therefore needs nothing from the scheduler: payload bytes are
// produced before the exchange, and the decode order is the rank order.

// Decoder decodes one compressed payload produced by the caller's encoder,
// accumulating the carried values into acc. All ranks of one
// AllReduceCompressed call must pass functionally identical decoders: the
// final replica equality rests on every rank decoding the same payloads the
// same way. DecodeAdd must not retain payload (it aliases pooled blackboard
// memory).
type Decoder interface {
	DecodeAdd(acc []float32, payload []byte) error
}

// stashBytes publishes a copy of local as rank's byte-blackboard entry,
// recycling the rank's previous entry into the arena (safe: the previous
// collective's closing barrier means no reader still holds it).
func (c *Comm) stashBytes(rank int, local []byte) {
	p := c.getByteBuf(len(local))
	copy(*p, local)
	c.mu.Lock()
	if old := c.byteBB[rank]; old != nil {
		c.putByteBuf(old)
	}
	c.byteBB[rank] = p
	c.mu.Unlock()
}

// getByteBuf / putByteBuf are the byte-payload arena backing the compressed
// blackboard, mirroring getBuf/getIntBuf.
func (c *Comm) getByteBuf(n int) *[]byte {
	if p, ok := c.byteBuf.Get().(*[]byte); ok && p != nil {
		if cap(*p) >= n {
			*p = (*p)[:n]
			return p
		}
	}
	s := make([]byte, n)
	return &s
}

func (c *Comm) putByteBuf(p *[]byte) { c.byteBuf.Put(p) }

// AllGatherBytes gathers each rank's (possibly different-length) opaque
// payload; every rank receives the per-rank payloads in rank order. Wire
// accounting is the standard ring all-gather volume of the actual payload
// bytes — the primitive the compressed all-reduce (and any future
// compressed gather) builds on. The returned inner slices are copies owned
// by the caller.
func (c *Comm) AllGatherBytes(rank int, local []byte) [][]byte {
	var t0 time.Time
	var v0 float64
	if c.tel != nil || c.trace != nil {
		t0 = time.Now()
		v0 = c.clockNow(rank)
	}
	c.stashBytes(rank, local)
	c.barrier.Wait()

	out := make([][]byte, c.g)
	var total, max int64
	c.mu.Lock()
	for r, s := range c.byteBB {
		var src []byte
		if s != nil {
			src = *s
		}
		cp := make([]byte, len(src))
		copy(cp, src)
		out[r] = cp
		total += int64(len(src))
		if int64(len(src)) > max {
			max = int64(len(src))
		}
	}
	bytes := total * int64(c.g-1) / int64(c.g)
	c.stats[rank].AllGatherCalls++
	c.stats[rank].AllGatherBytes += bytes
	c.mu.Unlock()
	c.barrier.Wait()
	c.charge(rank, func(cm *CostModel) {
		cm.Charge(cm.Link.RingAllGatherSeconds(c.g, max))
	})
	if c.tel != nil {
		c.tel.record("allgather_bytes", "bytes", 1, bytes, int64(time.Since(t0)))
	}
	c.traceOp("allgather_bytes", rank, t0, v0)
	return out
}

// AllReduceCompressed sums lossily compressed contributions across ranks:
// every rank passes its own encoded payload plus the destination buffer x,
// and on return every rank's x holds the identical sum of all G decoded
// payloads (x's previous contents are discarded — the caller's encoder
// already consumed them). Unlike AllReduce, the result is the sum of what
// survived each rank's compressor, not of the raw tensors; the caller's
// error-feedback state carries the difference into the next step.
//
// Stats accounting lands on the AllReduce counters (this is the dense
// gradient exchange, just compressed) at the ring all-gather volume of the
// real payload bytes, and the cost model prices the same volume — so a
// ratio below one shows up directly as fewer wire bytes and less simulated
// communication time.
func (c *Comm) AllReduceCompressed(rank int, x []float32, payload []byte, dec Decoder) error {
	var t0 time.Time
	var v0 float64
	if c.tel != nil || c.trace != nil {
		t0 = time.Now()
		v0 = c.clockNow(rank)
	}
	c.stashBytes(rank, payload)
	c.barrier.Wait()

	// Snapshot the payload pointers; entries stay valid until their owner
	// stashes again, which the closing barrier below forbids until every
	// rank is done decoding.
	payloads := make([][]byte, c.g)
	var total, max int64
	c.mu.Lock()
	for r, s := range c.byteBB {
		if s != nil {
			payloads[r] = *s
		}
		total += int64(len(payloads[r]))
		if int64(len(payloads[r])) > max {
			max = int64(len(payloads[r]))
		}
	}
	bytes := total * int64(c.g-1) / int64(c.g)
	st := &c.stats[rank]
	st.AllReduceCalls++
	st.AllReduceBytes += bytes
	c.mu.Unlock()

	// Decode-and-sum in rank order: same payloads, same order, same float
	// rounding on every rank.
	clear(x)
	var err error
	for r, p := range payloads {
		if e := dec.DecodeAdd(x, p); e != nil {
			err = fmt.Errorf("collective: compressed all-reduce: rank %d payload: %w", r, e)
			break
		}
	}
	if c.g > 1 {
		c.barrier.Wait()
	}
	c.charge(rank, func(cm *CostModel) {
		cm.Charge(cm.Link.RingAllGatherSeconds(c.g, max))
	})
	if c.tel != nil {
		c.tel.record("allreduce_compressed", "bytes", 1, bytes, int64(time.Since(t0)))
	}
	c.traceOp("allreduce_compressed", rank, t0, v0)
	return err
}
