package collective

import (
	"fmt"
	"sync/atomic"

	"zipflm/internal/perfmodel"
	"zipflm/internal/vclock"
)

// CostModel attaches virtual time to a communicator: every synchronous
// collective synchronizes the participating ranks' clocks to their maximum
// and advances them together by the operation's α–β duration on the given
// link (a ring hop costs α + chunkBytes/β, a barrier costs the
// synchronization alone). Charging happens between two barrier waits, with
// every rank quiesced, so virtual times are bit-reproducible regardless of
// goroutine scheduling.
//
// A nil CostModel (the default) leaves the hot paths exactly as they were:
// the only cost is one nil check per collective, guarded by the
// BenchmarkStep* benches.
//
// The model covers the synchronous collectives only. AllReduceAsync buckets
// deliberately bypass it: overlapped communication hides behind compute, so
// a single serialized per-rank clock would mis-price it, and bucket runners
// complete at scheduler-dependent times, which would break reproducibility.
// Simulated-time experiments therefore run the synchronous path.
type CostModel struct {
	// Link is the α–β cost of the fabric this communicator's collectives
	// traverse (PCIe for an intra-node group, InfiniBand for a ring that
	// spans nodes — see Hierarchy.AttachCost).
	Link perfmodel.LinkCost
	// Clocks are the participating ranks' clocks, indexed by this
	// communicator's rank ids (length must equal the communicator size).
	Clocks []*vclock.Clock

	// arrivals elects one charging rank per rankless synchronization round
	// (Barrier): of the g ranks that increment it between two barrier
	// waits, exactly one observes the round's first slot.
	arrivals atomic.Int64
}

// Charge synchronizes all participating clocks to their maximum and
// advances them together by d seconds. Exported so higher layers
// (experiments) can charge modeled costs — e.g. a dense all-reduce that is
// accounted but not materialized — onto the same clocks the live
// collectives advance. The caller must have the owning ranks quiesced.
func (cm *CostModel) Charge(d float64) {
	vclock.SyncAdvance(cm.Clocks, d)
}

// elect returns true for exactly one of g concurrent callers per round.
// Rounds must be separated by barriers on both sides.
func (cm *CostModel) elect(g int) bool {
	return (cm.arrivals.Add(1)-1)%int64(g) == 0
}

// AttachCost installs a cost model on the communicator. Passing nil
// detaches it. Must not be called while collectives are in flight.
func (c *Comm) AttachCost(cm *CostModel) {
	if cm != nil && len(cm.Clocks) != c.g {
		panic(fmt.Sprintf("collective: cost model has %d clocks for %d ranks", len(cm.Clocks), c.g))
	}
	c.cost = cm
}

// Cost returns the attached cost model (nil when detached).
func (c *Comm) Cost() *CostModel { return c.cost }

// charge applies fn exactly once across the group and releases no rank
// until it has been applied. All ranks must call charge at the same point
// of the same collective, immediately after that collective's closing
// barrier (so every rank is quiesced and rank 0's fn runs before anyone
// proceeds). No-op without a cost model.
func (c *Comm) charge(rank int, fn func(cm *CostModel)) {
	cm := c.cost
	if cm == nil {
		return
	}
	if rank == 0 {
		fn(cm)
	}
	if c.g > 1 {
		c.barrier.Wait()
	}
}

// AttachCost wires the hierarchy's communicators to the cluster's clocks
// with topology-aware link costs: every intra-group communicator charges
// the intra-node (PCIe) link, the leaders' communicator charges the
// inter-node (InfiniBand) link — the Table II fabric assignment. clocks is
// indexed by global rank and must cover all G ranks.
func (h *Hierarchy) AttachCost(intra, inter perfmodel.LinkCost, clocks []*vclock.Clock) {
	if len(clocks) != h.G {
		panic(fmt.Sprintf("collective: hierarchy cost model has %d clocks for %d ranks", len(clocks), h.G))
	}
	for i, grp := range h.groups {
		base := i * h.GroupSize
		h.groups[i].AttachCost(&CostModel{
			Link:   intra,
			Clocks: clocks[base : base+grp.Size()],
		})
	}
	lead := make([]*vclock.Clock, h.leaders.Size())
	for i := range lead {
		lead[i] = clocks[i*h.GroupSize]
	}
	h.leaders.AttachCost(&CostModel{Link: inter, Clocks: lead})
}
