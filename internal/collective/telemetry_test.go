package collective

import (
	"testing"

	"zipflm/internal/half"
	"zipflm/internal/telemetry"
)

// TestTelemetryObservesWithoutPerturbing runs the same all-reduce with and
// without telemetry attached: results must be bit-identical, and the
// telemetry byte counter must agree exactly with the Stats accounting.
func TestTelemetryObservesWithoutPerturbing(t *testing.T) {
	const g, n = 4, 257
	mk := func() [][]float32 {
		xs := make([][]float32, g)
		for r := range xs {
			xs[r] = make([]float32, n)
			for i := range xs[r] {
				xs[r][i] = float32(r+1) * float32(i%17) * 0.25
			}
		}
		return xs
	}

	plain := mk()
	cp := New(g)
	runRanks(g, func(rank int) { cp.AllReduce(rank, plain[rank], nil) })

	observed := mk()
	reg := telemetry.NewRegistry()
	ct := New(g)
	ct.AttachTelemetry(reg)
	runRanks(g, func(rank int) { ct.AllReduce(rank, observed[rank], nil) })

	for r := 0; r < g; r++ {
		for i := range plain[r] {
			if plain[r][i] != observed[r][i] {
				t.Fatalf("rank %d elem %d: %g (plain) != %g (telemetry on)", r, i, plain[r][i], observed[r][i])
			}
		}
	}

	var statBytes, statCalls int64
	for r := 0; r < g; r++ {
		s := ct.RankStats(r)
		statBytes += s.AllReduceBytes
		statCalls += s.AllReduceCalls
	}
	name := telemetry.Label(telemetry.Label("zipflm_collective_bytes_total", "op", "allreduce"), "wire", "fp32")
	if got := reg.Counter(name).Value(); got != statBytes {
		t.Fatalf("telemetry bytes %d != Stats bytes %d", got, statBytes)
	}
	callName := telemetry.Label(telemetry.Label("zipflm_collective_calls_total", "op", "allreduce"), "wire", "fp32")
	if got := reg.Counter(callName).Value(); got != statCalls {
		t.Fatalf("telemetry calls %d != Stats calls %d", got, statCalls)
	}
	durName := telemetry.Label(telemetry.Label("zipflm_collective_seconds", "op", "allreduce"), "wire", "fp32")
	if got := reg.Duration(durName).Count(); got != statCalls {
		t.Fatalf("duration histogram has %d observations, want %d", got, statCalls)
	}
}

// TestTelemetryWireLabels checks the wire-format label resolution, including
// the WireNamer hook on half.Scaler.
func TestTelemetryWireLabels(t *testing.T) {
	if wireLabel(nil) != "fp32" {
		t.Errorf("nil wire label = %q, want fp32", wireLabel(nil))
	}
	if got := wireLabel(half.NewScaler(1024)); got != "fp16" {
		t.Errorf("Scaler label = %q, want fp16", got)
	}
	type anon struct{ Wire }
	if got := wireLabel(anon{}); got != "custom" {
		t.Errorf("unnamed wire label = %q, want custom", got)
	}

	const g = 2
	reg := telemetry.NewRegistry()
	c := New(g)
	c.AttachTelemetry(reg)
	xs := make([][]float32, g)
	for r := range xs {
		xs[r] = make([]float32, 64)
		for i := range xs[r] {
			xs[r][i] = float32(i)
		}
	}
	runRanks(g, func(rank int) { c.AllReduce(rank, xs[rank], half.NewScaler(1024)) })
	name := telemetry.Label(telemetry.Label("zipflm_collective_calls_total", "op", "allreduce"), "wire", "fp16")
	if got := reg.Counter(name).Value(); got != g {
		t.Fatalf("fp16-labelled calls = %d, want %d", got, g)
	}
}

// TestTelemetryAsyncAndGather covers the async bucket path and the gathers.
func TestTelemetryAsyncAndGather(t *testing.T) {
	const g = 2
	reg := telemetry.NewRegistry()
	c := New(g)
	c.AttachTelemetry(reg)

	xs := make([][]float32, g)
	for r := range xs {
		xs[r] = make([]float32, 32)
	}
	runRanks(g, func(rank int) {
		p := c.AllReduceAsync(rank, xs[rank], nil)
		c.FlushAsync(rank)
		p.Wait()
		c.AllGatherInts(rank, []int{rank})
		c.AllGatherFloats(rank, xs[rank][:4], nil)
	})

	for _, op := range []string{"allreduce_async", "allgather_ints", "allgather_floats"} {
		wire := "fp32"
		if op == "allgather_ints" {
			wire = "int32"
		}
		name := telemetry.Label(telemetry.Label("zipflm_collective_calls_total", "op", op), "wire", wire)
		if got := reg.Counter(name).Value(); got != g {
			t.Errorf("%s calls = %d, want %d", op, got, g)
		}
	}
}
