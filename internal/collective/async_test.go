package collective

import (
	"testing"

	"zipflm/internal/half"
	"zipflm/internal/rng"
)

// makeTensors builds, for each rank, the same set of tensor shapes filled
// with rank-dependent pseudo-random values, returning one full copy per
// mode so sync and async can reduce identical inputs.
func makeTensors(g int, shapes []int, seed uint64) (syncT, asyncT [][][]float32) {
	syncT = make([][][]float32, g)
	asyncT = make([][][]float32, g)
	for r := 0; r < g; r++ {
		rr := rng.New(seed + uint64(r)*1315423911)
		syncT[r] = make([][]float32, len(shapes))
		asyncT[r] = make([][]float32, len(shapes))
		for i, n := range shapes {
			a := make([]float32, n)
			b := make([]float32, n)
			for j := range a {
				v := float32(rr.Float64()*4 - 2)
				a[j] = v
				b[j] = v
			}
			syncT[r][i] = a
			asyncT[r][i] = b
		}
	}
	return syncT, asyncT
}

// reduceBoth runs the same tensor sequence through the synchronous and the
// bucketed asynchronous path on separate communicators and returns both.
func reduceBoth(t *testing.T, g int, shapes []int, wire Wire, bucketBytes int64) (syncT, asyncT [][][]float32, syncC, asyncC *Comm) {
	t.Helper()
	syncT, asyncT = makeTensors(g, shapes, 7)
	syncC, asyncC = New(g), New(g)
	if bucketBytes > 0 {
		asyncC.SetBucketBytes(bucketBytes)
	}
	runRanks(g, func(rank int) {
		for _, x := range syncT[rank] {
			syncC.AllReduce(rank, x, wire)
		}
	})
	runRanks(g, func(rank int) {
		pend := make([]*Pending, 0, len(asyncT[rank]))
		for _, x := range asyncT[rank] {
			pend = append(pend, asyncC.AllReduceAsync(rank, x, wire))
		}
		asyncC.FlushAsync(rank)
		for _, p := range pend {
			p.Wait()
		}
	})
	return syncT, asyncT, syncC, asyncC
}

// TestAsyncMatchesSyncBitIdentical is the core equivalence claim of the
// bucketed path: fusing tensors into buckets changes neither the reduced
// values (bit for bit) nor the per-rank Stats counters, across bucket
// thresholds that split the sequence everywhere from one-tensor-per-bucket
// to everything-in-one-bucket.
func TestAsyncMatchesSyncBitIdentical(t *testing.T) {
	shapes := []int{7, 1, 33, 12, 64, 5}
	for _, g := range []int{1, 2, 3, 4, 8} {
		for _, bucket := range []int64{4, 64, 256, 1 << 20} {
			syncT, asyncT, syncC, asyncC := reduceBoth(t, g, shapes, nil, bucket)
			for r := 0; r < g; r++ {
				for i := range shapes {
					for j := range syncT[r][i] {
						if syncT[r][i][j] != asyncT[r][i][j] {
							t.Fatalf("g=%d bucket=%d: rank %d tensor %d elem %d: sync %v async %v",
								g, bucket, r, i, j, syncT[r][i][j], asyncT[r][i][j])
						}
					}
				}
				if syncC.RankStats(r) != asyncC.RankStats(r) {
					t.Fatalf("g=%d bucket=%d: rank %d stats diverge: sync %+v async %+v",
						g, bucket, r, syncC.RankStats(r), asyncC.RankStats(r))
				}
			}
		}
	}
}

// TestAsyncMatchesSyncFP16 repeats the equivalence under FP16 wire
// compression, where the rounding points inside the ring are what could
// diverge if bucketing changed chunk boundaries.
func TestAsyncMatchesSyncFP16(t *testing.T) {
	wire := half.NewScaler(512)
	shapes := []int{10, 3, 41, 16}
	for _, g := range []int{2, 4, 5} {
		for _, bucket := range []int64{4, 128, 1 << 20} {
			syncT, asyncT, syncC, asyncC := reduceBoth(t, g, shapes, wire, bucket)
			for r := 0; r < g; r++ {
				for i := range shapes {
					for j := range syncT[r][i] {
						if syncT[r][i][j] != asyncT[r][i][j] {
							t.Fatalf("g=%d bucket=%d: rank %d tensor %d elem %d: sync %v async %v",
								g, bucket, r, i, j, syncT[r][i][j], asyncT[r][i][j])
						}
					}
				}
				if syncC.RankStats(r) != asyncC.RankStats(r) {
					t.Fatalf("g=%d bucket=%d: rank %d stats diverge", g, bucket, r)
				}
			}
		}
	}
}

// TestAsyncWireChangeClosesBucket: a scaler switch mid-sequence must flush
// deterministically (mixed-precision hops inside one bucket would be
// unanswerable); results still match per-tensor sync calls with the same
// scaler sequence.
func TestAsyncWireChangeClosesBucket(t *testing.T) {
	g := 4
	wire := half.NewScaler(256)
	shapes := []int{9, 9, 9, 9}
	syncT, asyncT := makeTensors(g, shapes, 11)
	wireOf := func(i int) Wire {
		if i >= 2 {
			return wire
		}
		return nil
	}
	syncC, asyncC := New(g), New(g)
	asyncC.SetBucketBytes(1 << 20) // only the wire change can close bucket 0
	runRanks(g, func(rank int) {
		for i, x := range syncT[rank] {
			syncC.AllReduce(rank, x, wireOf(i))
		}
	})
	runRanks(g, func(rank int) {
		var pend []*Pending
		for i, x := range asyncT[rank] {
			pend = append(pend, asyncC.AllReduceAsync(rank, x, wireOf(i)))
		}
		asyncC.FlushAsync(rank)
		for _, p := range pend {
			p.Wait()
		}
	})
	for r := 0; r < g; r++ {
		for i := range shapes {
			for j := range syncT[r][i] {
				if syncT[r][i][j] != asyncT[r][i][j] {
					t.Fatalf("rank %d tensor %d elem %d: sync %v async %v",
						r, i, j, syncT[r][i][j], asyncT[r][i][j])
				}
			}
		}
		if syncC.RankStats(r) != asyncC.RankStats(r) {
			t.Fatalf("rank %d stats diverge", r)
		}
	}
}

// TestAsyncOverlapsSyncCollectives drives the trainer's overlap pattern at
// the collective level: async dense reductions in flight while the same
// ranks run blackboard gathers and a synchronous ring all-reduce. The two
// channel sets are disjoint, so nothing may interleave or deadlock.
func TestAsyncOverlapsSyncCollectives(t *testing.T) {
	g := 4
	n := 1024
	c := New(g)
	c.SetBucketBytes(512) // several buckets in flight
	dense, _ := makeTensors(g, []int{n, n, n}, 3)
	sparse, _ := makeTensors(g, []int{64}, 5)
	runRanks(g, func(rank int) {
		var pend []*Pending
		for _, x := range dense[rank] {
			pend = append(pend, c.AllReduceAsync(rank, x, nil))
		}
		c.FlushAsync(rank)
		// Sparse-exchange-shaped synchronous work while rings fly.
		idx := []int{rank, rank + 10, rank + 20}
		gathered := c.AllGatherInts(rank, idx)
		if len(gathered) != g {
			t.Errorf("rank %d: gathered %d slices", rank, len(gathered))
		}
		c.AllReduce(rank, sparse[rank][0], nil)
		for _, p := range pend {
			p.Wait()
		}
	})
	// Every dense tensor must hold the sum over ranks of identical inputs:
	// ranks started from rank-dependent values, so just verify agreement.
	for r := 1; r < g; r++ {
		for i := range dense[r] {
			for j := range dense[r][i] {
				if dense[r][i][j] != dense[0][i][j] {
					t.Fatalf("rank %d tensor %d elem %d disagrees after overlap", r, i, j)
				}
			}
		}
	}
}

// TestAsyncManyRounds stresses bucket ordering across repeated steps, the
// way a training run reuses one communicator: pool buffers, bucket chains
// and stats must all stay consistent.
func TestAsyncManyRounds(t *testing.T) {
	g := 3
	c := New(g)
	c.SetBucketBytes(128)
	shapes := []int{17, 5, 90, 33}
	for round := 0; round < 25; round++ {
		tensors, _ := makeTensors(g, shapes, uint64(round))
		runRanks(g, func(rank int) {
			var pend []*Pending
			for _, x := range tensors[rank] {
				pend = append(pend, c.AllReduceAsync(rank, x, nil))
			}
			c.FlushAsync(rank)
			for _, p := range pend {
				p.Wait()
			}
		})
		for r := 1; r < g; r++ {
			for i := range shapes {
				for j := range tensors[r][i] {
					if tensors[r][i][j] != tensors[0][i][j] {
						t.Fatalf("round %d: rank %d tensor %d elem %d disagrees", round, r, i, j)
					}
				}
			}
		}
	}
	want := int64(25 * len(shapes))
	for r := 0; r < g; r++ {
		if got := c.RankStats(r).AllReduceCalls; got != want {
			t.Errorf("rank %d AllReduceCalls = %d, want %d", r, got, want)
		}
	}
}
