package collective

import (
	"sync"
	"time"

	"zipflm/internal/telemetry"
)

// WireNamer is optionally implemented by Wire formats to identify
// themselves in telemetry labels (half.Scaler reports "fp16",
// compress.Quant8 reports "q8"). Formats without it label as "custom".
type WireNamer interface {
	WireName() string
}

// wireLabel resolves the telemetry label for a wire format.
func wireLabel(w Wire) string {
	if w == nil {
		return "fp32"
	}
	if n, ok := w.(WireNamer); ok {
		return n.WireName()
	}
	return "custom"
}

// opInst is the instrument set of one (operation, wire) pair, resolved once
// and cached so the per-call cost is a map lookup, never a name build.
type opInst struct {
	calls *telemetry.Counter
	bytes *telemetry.Counter
	dur   *telemetry.Histogram
}

type opKey struct{ op, wire string }

// commTelemetry holds the communicator's registry hookup. A nil
// *commTelemetry (telemetry off) makes every record a single branch.
type commTelemetry struct {
	reg *telemetry.Registry
	mu  sync.Mutex
	ops map[opKey]*opInst
}

// AttachTelemetry wires the communicator's collectives into reg: per
// operation and wire format, a call counter, a wire-byte counter, and a
// wall-duration histogram (zipflm_collective_calls_total / _bytes_total /
// _seconds, labelled op= and wire=). Counters tally per rank, like Stats.
// Attach before the first collective; a nil reg detaches. Telemetry only
// observes — reduced values, Stats accounting, and virtual-clock charges
// are bit-identical with or without it.
func (c *Comm) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		c.tel = nil
		return
	}
	c.tel = &commTelemetry{reg: reg, ops: make(map[opKey]*opInst)}
}

// AttachTrace wires the communicator's synchronous collectives into a span
// tracer: every operation emits one span per rank (cat "collective", tid =
// rank) whose virtual-clock duration covers the rank's whole participation
// — wire time plus barrier wait — read from the attached cost model's
// clocks (zero without AttachCost). Async buckets are not traced: they
// complete at scheduler-dependent times the virtual clock deliberately
// does not price. nil detaches. Purely observational, like AttachTelemetry.
func (c *Comm) AttachTrace(tr *telemetry.Tracer) {
	c.trace = tr
}

// clockNow reads rank's virtual clock (0 without a cost model). Safe at
// operation entry and after the closing charge: clocks are only written by
// the cost model's charge section, which every rank is barriered around.
func (c *Comm) clockNow(rank int) float64 {
	if c.cost == nil || rank >= len(c.cost.Clocks) {
		return 0
	}
	return c.cost.Clocks[rank].Now()
}

// traceOp emits one completed collective span for rank.
func (c *Comm) traceOp(op string, rank int, t0 time.Time, v0 float64) {
	if c.trace == nil {
		return
	}
	c.trace.Span("collective", op, rank, t0, time.Since(t0), v0, c.clockNow(rank)-v0)
}

// inst returns the cached instrument set for (op, wire).
func (ct *commTelemetry) inst(op, wire string) *opInst {
	k := opKey{op, wire}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	oi, ok := ct.ops[k]
	if !ok {
		label := func(base string) string {
			return telemetry.Label(telemetry.Label(base, "op", op), "wire", wire)
		}
		oi = &opInst{
			calls: ct.reg.Counter(label("zipflm_collective_calls_total")),
			bytes: ct.reg.Counter(label("zipflm_collective_bytes_total")),
			dur:   ct.reg.Duration(label("zipflm_collective_seconds")),
		}
		ct.ops[k] = oi
	}
	return oi
}

// record posts one completed operation: calls operations moving bytes over
// the wire in dur nanoseconds of wall time.
func (ct *commTelemetry) record(op, wire string, calls, bytes, durNanos int64) {
	if ct == nil {
		return
	}
	oi := ct.inst(op, wire)
	oi.calls.Add(calls)
	oi.bytes.Add(bytes)
	oi.dur.Record(durNanos)
}
