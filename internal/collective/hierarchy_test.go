package collective

import (
	"testing"
)

// twoLevelAllReduce composes the hierarchy's communicators into an
// all-reduce: reduce inside each group, all-reduce across leaders, broadcast
// back inside each group. It is the collective skeleton the hierarchical
// exchange engine builds on.
func twoLevelAllReduce(h *Hierarchy, rank int, x []float32) {
	grp := h.Group(rank)
	gid, gr := h.GroupOf(rank)
	grp.AllReduce(gr, x, nil)
	if h.IsLeader(rank) {
		h.Leaders().AllReduce(gid, x, nil)
	}
	grp.Broadcast(gr, 0, x)
}

// TestTwoLevelAllReduceMatchesFlat: the two-level reduce-scatter/allgather
// over groups must produce the same values as a flat Comm all-reduce. The
// payloads are small integers so both addition orders are exact and the
// comparison can demand bit equality.
func TestTwoLevelAllReduceMatchesFlat(t *testing.T) {
	for _, tc := range []struct{ g, gs, n int }{
		{4, 2, 64},
		{8, 4, 100},
		{10, 4, 33}, // non-divisible: groups of 4, 4, 2
		{6, 6, 17},  // one group: leaders ring is a single rank
		{5, 2, 1},   // groups of 2, 2, 1
	} {
		h := NewHierarchy(tc.g, tc.gs)
		flat := New(tc.g)

		mk := func(rank int) []float32 {
			x := make([]float32, tc.n)
			for i := range x {
				x[i] = float32((rank+1)*(i%7) - 3*rank)
			}
			return x
		}
		hier := make([][]float32, tc.g)
		ref := make([][]float32, tc.g)
		for r := 0; r < tc.g; r++ {
			hier[r] = mk(r)
			ref[r] = mk(r)
		}

		runRanks(tc.g, func(rank int) { twoLevelAllReduce(h, rank, hier[rank]) })
		runRanks(tc.g, func(rank int) { flat.AllReduce(rank, ref[rank], nil) })

		for r := 0; r < tc.g; r++ {
			for i := range ref[r] {
				if hier[r][i] != ref[r][i] {
					t.Fatalf("G=%d gs=%d: rank %d elem %d: two-level %v != flat %v",
						tc.g, tc.gs, r, i, hier[r][i], ref[r][i])
				}
			}
		}
	}
}

// TestGroupOfExhaustive checks every rank of non-divisible (and divisible)
// topologies: the (group, groupRank) pair must invert to the rank, stay
// inside the group communicator's size, agree with IsLeader and Group, and
// partition all ranks with no gaps.
func TestGroupOfExhaustive(t *testing.T) {
	for _, tc := range []struct{ g, gs int }{
		{10, 4}, // the ISSUE's example: groups of 4, 4, 2
		{7, 3},
		{8, 8},
		{9, 2},
		{5, 10}, // group larger than G collapses to one group
		{1, 1},
	} {
		h := NewHierarchy(tc.g, tc.gs)
		gs := h.GroupSize // NewHierarchy clamps gs to G
		perGroup := make(map[int][]int)
		leaders := 0
		for rank := 0; rank < tc.g; rank++ {
			group, gr := h.GroupOf(rank)
			if group < 0 || group >= h.NumGroups() {
				t.Fatalf("G=%d gs=%d: rank %d in out-of-range group %d", tc.g, tc.gs, rank, group)
			}
			if group*gs+gr != rank {
				t.Errorf("G=%d gs=%d: rank %d maps to (%d,%d), does not invert", tc.g, tc.gs, rank, group, gr)
			}
			grp := h.Group(rank)
			if gr < 0 || gr >= grp.Size() {
				t.Errorf("G=%d gs=%d: rank %d group-rank %d outside group size %d", tc.g, tc.gs, rank, gr, grp.Size())
			}
			if h.IsLeader(rank) != (gr == 0) {
				t.Errorf("G=%d gs=%d: rank %d leader flag inconsistent with group rank %d", tc.g, tc.gs, rank, gr)
			}
			if h.IsLeader(rank) {
				leaders++
			}
			perGroup[group] = append(perGroup[group], gr)
		}
		if len(perGroup) != h.NumGroups() {
			t.Errorf("G=%d gs=%d: %d populated groups, hierarchy claims %d", tc.g, tc.gs, len(perGroup), h.NumGroups())
		}
		if leaders != h.Leaders().Size() {
			t.Errorf("G=%d gs=%d: %d leaders but leaders comm has %d ranks", tc.g, tc.gs, leaders, h.Leaders().Size())
		}
		total := 0
		for group, ranks := range perGroup {
			if len(ranks) != h.Group(group*gs).Size() {
				t.Errorf("G=%d gs=%d: group %d has %d members, comm sized %d",
					tc.g, tc.gs, group, len(ranks), h.Group(group*gs).Size())
			}
			seen := make(map[int]bool)
			for _, gr := range ranks {
				if seen[gr] {
					t.Errorf("G=%d gs=%d: group %d has duplicate group-rank %d", tc.g, tc.gs, group, gr)
				}
				seen[gr] = true
			}
			total += len(ranks)
		}
		if total != tc.g {
			t.Errorf("G=%d gs=%d: groups cover %d ranks, want %d", tc.g, tc.gs, total, tc.g)
		}
	}
}

func TestGroupOfPanicsOutsideRange(t *testing.T) {
	h := NewHierarchy(4, 2)
	for _, rank := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GroupOf(%d) must panic", rank)
				}
			}()
			h.GroupOf(rank)
		}()
	}
}
