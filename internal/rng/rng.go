// Package rng provides deterministic, seedable random number generation for
// the simulator. Every stochastic component in the reproduction (corpus
// synthesis, parameter initialization, sampled softmax) draws from this
// package so that experiments are bit-reproducible across runs and across
// simulated ranks.
//
// The generator is xoshiro256**, seeded through SplitMix64 as recommended by
// its authors. It is not cryptographically secure; it is fast, has a 2^256-1
// period, and passes BigCrush, which is more than adequate for Monte Carlo
// style simulation.
package rng

import "math"

// splitMix64 advances a SplitMix64 state and returns the next output. It is
// used only to expand a single 64-bit seed into the 256-bit xoshiro state.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a deterministic xoshiro256** generator.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from the given 64-bit seed. Two generators
// with the same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro must not start from the all-zero state; SplitMix64 cannot
	// produce four zero outputs in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 bits from the stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation with rejection to
	// remove modulo bias.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	hiPart := t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + hiPart + (t >> 32)
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of the first n elements using the
// provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent child generator from the current stream. The
// child is deterministic given the parent state, so a tree of generators
// (one per simulated rank, for example) is reproducible from the root seed.
func (r *RNG) Fork() *RNG {
	return New(r.Uint64())
}

// State returns the generator's full 256-bit internal state, the handle the
// checkpoint subsystem uses to persist a stream mid-run: SetState on a fresh
// generator continues the exact sequence this generator would have produced.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState restores a state captured by State. The all-zero state is
// unreachable from any seed (and would wedge xoshiro), so it is rejected the
// same way New guards against it.
func (r *RNG) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		panic("rng: SetState with all-zero state")
	}
	r.s = s
}
