package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from different seeds matched %d/100 times", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 30} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", k, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32 = %v out of [0,1)", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(123)
	childA := parent.Fork()
	childB := parent.Fork()
	if childA.Uint64() == childB.Uint64() {
		// A single collision is astronomically unlikely.
		t.Fatal("sibling forks produced identical first outputs")
	}
	// Forking is deterministic from the root seed.
	parent2 := New(123)
	childA2 := parent2.Fork()
	if childA2.Uint64() != New(123).Fork().Uint64() {
		t.Fatal("fork tree is not reproducible from root seed")
	}
	_ = childA
}

func TestMul128(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul128(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul128(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestZipfRange(t *testing.T) {
	r := New(17)
	for _, n := range []int{1, 2, 100, 100000} {
		z := NewZipf(r, n, 1.0)
		for i := 0; i < 1000; i++ {
			k := z.Next()
			if k < 0 || k >= n {
				t.Fatalf("Zipf(n=%d) = %d out of range", n, k)
			}
		}
	}
}

// TestZipfSlope verifies the empirical rank-frequency distribution follows
// the configured power law: freq(rank) ~ rank^-s, the property Figure 1 of
// the paper depends on.
func TestZipfSlope(t *testing.T) {
	for _, s := range []float64{0.8, 1.0, 1.2} {
		r := New(29)
		const n, draws = 10000, 2000000
		z := NewZipf(r, n, s)
		counts := make([]float64, n)
		for i := 0; i < draws; i++ {
			counts[z.Next()]++
		}
		// Regress log(count) on log(rank+1) over the well-populated head.
		var sx, sy, sxx, sxy float64
		m := 0
		for k := 0; k < 200; k++ {
			if counts[k] < 10 {
				continue
			}
			x := math.Log(float64(k + 1))
			y := math.Log(counts[k])
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
			m++
		}
		slope := (float64(m)*sxy - sx*sy) / (float64(m)*sxx - sx*sx)
		if math.Abs(-slope-s) > 0.08 {
			t.Errorf("s=%v: empirical slope %v, want ~%v", s, -slope, -s)
		}
	}
}

func TestZipfHeadDominates(t *testing.T) {
	r := New(31)
	z := NewZipf(r, 1000, 1.0)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[10] {
		t.Errorf("rank 0 (%d draws) not more frequent than rank 10 (%d)", counts[0], counts[10])
	}
}

func TestZipfPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(New(1), 0, 1) },
		func() { NewZipf(New(1), 10, 0) },
		func() { NewLogUniform(New(1), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestLogUniformRange(t *testing.T) {
	r := New(41)
	for _, n := range []int{1, 2, 50, 100000} {
		l := NewLogUniform(r, n)
		for i := 0; i < 2000; i++ {
			k := l.Next()
			if k < 0 || k >= n {
				t.Fatalf("LogUniform(n=%d) = %d out of range", n, k)
			}
		}
	}
}

// TestLogUniformDistribution verifies the empirical frequency matches the
// analytic Prob used by the sampled-softmax correction term.
func TestLogUniformDistribution(t *testing.T) {
	r := New(43)
	const n, draws = 1000, 500000
	l := NewLogUniform(r, n)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[l.Next()]++
	}
	for _, k := range []int{0, 1, 5, 50, 500} {
		want := l.Prob(k) * draws
		got := float64(counts[k])
		if want > 50 && math.Abs(got-want) > 6*math.Sqrt(want) {
			t.Errorf("k=%d: got %v draws, want ~%v", k, got, want)
		}
	}
}

func TestLogUniformProbSumsToOne(t *testing.T) {
	l := NewLogUniform(New(1), 5000)
	var sum float64
	for k := 0; k < 5000; k++ {
		sum += l.Prob(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v, want 1", sum)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipfNext(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 1_000_000, 1.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}
