package rng

import "math"

// Zipf draws integers k in [0, n) with probability proportional to
// 1/(k+1)^s, the classic Zipf rank-frequency law the paper builds on
// (word frequency inversely proportional to rank). It uses the
// rejection-inversion method of Hörmann and Derflinger, which has O(1)
// expected cost per sample independent of n, so corpora with multi-million
// word vocabularies synthesize quickly.
//
// s must be > 0 and != 1 is NOT required; s == 1 is handled via the
// logarithmic branch of the generalized harmonic integral.
type Zipf struct {
	r *RNG
	n float64
	s float64
	// Precomputed constants of the rejection-inversion scheme.
	hx0       float64 // h(x0) shifted integral at left edge
	hImaxX    float64 // H(imax + 1/2)
	hImaxDiff float64 // hx0 - hImaxX
	oneMinusS float64
}

// NewZipf returns a Zipf sampler over ranks [0, n) with exponent s > 0.
// It panics on invalid parameters.
func NewZipf(r *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	if s <= 0 {
		panic("rng: NewZipf with non-positive exponent")
	}
	z := &Zipf{r: r, n: float64(n), s: s, oneMinusS: 1 - s}
	z.hx0 = z.h(0.5) - math.Exp(-s*math.Log(1))
	z.hImaxX = z.h(z.n + 0.5)
	z.hImaxDiff = z.hx0 - z.hImaxX
	return z
}

// h is the antiderivative of x^-s over the shifted domain, using ranks
// starting at 1 internally (sample k+1, return k).
func (z *Zipf) h(x float64) float64 {
	if z.s == 1 {
		return -math.Log(x)
	}
	return -math.Exp(z.oneMinusS*math.Log(x)) / z.oneMinusS
}

// hInv is the inverse of h.
func (z *Zipf) hInv(x float64) float64 {
	if z.s == 1 {
		return math.Exp(-x)
	}
	return math.Exp(1 / z.oneMinusS * math.Log(-z.oneMinusS*x))
}

// Next returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Next() int {
	for {
		u := z.hImaxX + z.r.Float64()*z.hImaxDiff
		x := z.hInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		}
		if k > z.n {
			k = z.n
		}
		if k-x <= 0.5 || u >= z.h(k+0.5)-math.Exp(-z.s*math.Log(k)) {
			return int(k) - 1
		}
	}
}

// LogUniform draws integers in [0, n) with P(k) proportional to
// log((k+2)/(k+1)), the "log-uniform" candidate distribution TensorFlow's
// sampled softmax uses and the paper's sampled-softmax layer assumes: when
// the vocabulary is sorted by descending frequency (as ours is), the
// candidate distribution approximates the Zipf unigram distribution.
type LogUniform struct {
	r     *RNG
	n     int
	logN1 float64
}

// NewLogUniform returns a log-uniform sampler over [0, n).
func NewLogUniform(r *RNG, n int) *LogUniform {
	if n <= 0 {
		panic("rng: NewLogUniform with non-positive n")
	}
	return &LogUniform{r: r, n: n, logN1: math.Log(float64(n) + 1)}
}

// Next returns the next log-uniform sample in [0, n).
func (l *LogUniform) Next() int {
	// Inverse CDF: F(k) = log(k+1)/log(n+1)  =>  k = floor(exp(u*log(n+1))) - 1.
	k := int(math.Exp(l.r.Float64()*l.logN1)) - 1
	if k < 0 {
		k = 0
	}
	if k >= l.n {
		k = l.n - 1
	}
	return k
}

// Prob returns the probability of drawing k under the log-uniform
// distribution. Sampled softmax needs this for its correction term
// (subtracting log Q(k) from the sampled logits).
func (l *LogUniform) Prob(k int) float64 {
	return math.Log(float64(k+2)/float64(k+1)) / l.logN1
}
