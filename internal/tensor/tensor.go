// Package tensor provides the dense float32 linear-algebra kernels the
// language-model layers are built on: row-major matrices, matmul with
// optional transposes, row gather/scatter-add (the embedding forward and
// backward primitives of §II-A), and the elementwise activations LSTM and
// RHN cells need.
//
// Everything is plain Go over flat slices — no assembly, no external BLAS —
// because the module must build offline from the standard library alone.
// The kernels are written cache-friendly (ikj matmul loop order, row-major
// contiguous access) which is enough for the laptop-scale training runs the
// reproduction performs.
package tensor

import (
	"fmt"
	"math"

	"zipflm/internal/rng"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	// Data holds Rows*Cols values; element (r, c) is Data[r*Cols+c].
	Data []float32
}

// NewMatrix returns a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// NewMatrixFrom wraps an existing slice as a matrix. The slice is used
// directly (not copied); len(data) must equal rows*cols.
func NewMatrixFrom(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d x %d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns a view (not a copy) of row r.
func (m *Matrix) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// RandomizeNormal fills the matrix with N(0, std) values from r.
func (m *Matrix) RandomizeNormal(r *rng.RNG, std float64) {
	for i := range m.Data {
		m.Data[i] = float32(r.NormFloat64() * std)
	}
}

// RandomizeUniform fills the matrix with U(-bound, bound) values.
func (m *Matrix) RandomizeUniform(r *rng.RNG, bound float64) {
	for i := range m.Data {
		m.Data[i] = float32((2*r.Float64() - 1) * bound)
	}
}

// MatMul computes dst = a @ b. Shapes: a is m x k, b is k x n, dst is m x n.
// dst must not alias a or b. The kernel uses ikj order so the inner loop
// streams both b and dst rows sequentially.
func MatMul(dst, a, b *Matrix) {
	checkMatMul(dst, a, b)
	matMulRows(dst, a, b, 0, a.Rows)
}

func checkMatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch (%dx%d)@(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
}

// matMulRows is the MatMul kernel over dst rows [lo, hi). Each output row
// depends only on a's matching row, so any row partition computes every
// element with exactly the serial pass's operations in the same order.
//
// The aik == 0 skip saves the axpy for sparse multipliers (dropout-masked
// gradients), but IEEE 0×Inf and 0×NaN are NaN, not 0 — skipping a poisoned
// b row would silently erase a diverged activation. The skip therefore also
// requires the b row to be finite; the finiteness scan only runs on the
// skip path, so fully dense inputs pay nothing.
func matMulRows(dst, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		ar := a.Row(i)
		dr := dst.Row(i)
		for j := range dr {
			dr[j] = 0
		}
		for k := 0; k < a.Cols; k++ {
			aik := ar[k]
			br := b.Row(k)
			if aik == 0 && allFinite(br) {
				continue
			}
			axpy(aik, dr, br)
		}
	}
}

// matMulCols is the MatMul kernel over dst columns [lo, hi), the tiling used
// when a has too few rows to split (a batch-1 backward). Every dst element
// accumulates over k in ascending order exactly as in matMulRows, just
// restricted to a column range, so the two tilings are bit-identical. The
// skip's finiteness test always scans the full b row — the tile must make
// the same skip decision the serial kernel would.
func matMulCols(dst, a, b *Matrix, lo, hi int) {
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		dr := dst.Row(i)[lo:hi]
		for j := range dr {
			dr[j] = 0
		}
		for k := 0; k < a.Cols; k++ {
			aik := ar[k]
			br := b.Row(k)
			if aik == 0 && allFinite(br) {
				continue
			}
			axpy(aik, dr, br[lo:hi])
		}
	}
}

// MatMulATB computes dst = aᵀ @ b. Shapes: a is k x m, b is k x n,
// dst is m x n. Used by backward passes (weight gradients).
func MatMulATB(dst, a, b *Matrix) {
	checkMatMulATB(dst, a, b)
	dst.Zero()
	MatMulATBAcc(dst, a, b)
}

// MatMulATBAcc computes dst += aᵀ @ b without any scratch: the fused
// gradient-accumulation kernel of the backward passes. Compared with
// MatMulATB into a scratch matrix followed by AddInPlace, it touches dst
// once instead of writing, re-reading, and adding a full scratch matrix —
// the dominant memory traffic of weight-gradient accumulation.
func MatMulATBAcc(dst, a, b *Matrix) {
	checkMatMulATB(dst, a, b)
	matMulATBAccRows(dst, a, b, 0, a.Cols)
}

func checkMatMulATB(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulATB shape mismatch (%dx%d)T@(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
}

// matMulATBAccRows is the MatMulATBAcc kernel over dst rows [lo, hi) — that
// is, over a's columns. dst row i accumulates a[k][i]·b.Row(k) for k in
// ascending order, and that per-row accumulation order is independent of how
// the i range is partitioned, so any row tiling is bit-identical to the
// serial pass with no reduction step and no atomics. (Partitioning over k
// instead — per-worker accumulators plus a final reduce — would regroup the
// float adds and change low bits, which is why the parallel backend tiles
// the output rows.)
//
// As in matMulRows, the zero-multiplier skip also requires the b row to be
// finite so NaN/Inf poison propagates; brFinite memoizes the scan per k.
func matMulATBAccRows(dst, a, b *Matrix, lo, hi int) {
	for k := 0; k < a.Rows; k++ {
		ar := a.Row(k)
		br := b.Row(k)
		brChecked, brFinite := false, false
		for i := lo; i < hi; i++ {
			aki := ar[i]
			if aki == 0 {
				if !brChecked {
					brChecked, brFinite = true, allFinite(br)
				}
				if brFinite {
					continue
				}
			}
			axpy(aki, dst.Row(i), br)
		}
	}
}

// matMulATBAccCols is the MatMulATBAcc kernel over dst columns [lo, hi),
// used when aᵀ has too few rows to split. Element-wise identical to the row
// tiling (same ascending-k accumulation per element, finiteness judged on
// the full b row).
func matMulATBAccCols(dst, a, b *Matrix, lo, hi int) {
	for k := 0; k < a.Rows; k++ {
		ar := a.Row(k)
		br := b.Row(k)
		brChecked, brFinite := false, false
		for i, aki := range ar {
			if aki == 0 {
				if !brChecked {
					brChecked, brFinite = true, allFinite(br)
				}
				if brFinite {
					continue
				}
			}
			axpy(aki, dst.Row(i)[lo:hi], br[lo:hi])
		}
	}
}

// allFinite reports whether every element is finite (no NaN or ±Inf). The
// trick: v−v is ±0 for finite v and NaN otherwise, and a sum of signed
// zeros compares equal to 0 while any NaN poisons it — one branch for the
// whole slice.
func allFinite(x []float32) bool {
	var s0, s1, s2, s3 float32
	n := len(x) &^ 3
	for i := 0; i < n; i += 4 {
		s0 += x[i] - x[i]
		s1 += x[i+1] - x[i+1]
		s2 += x[i+2] - x[i+2]
		s3 += x[i+3] - x[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for i := n; i < len(x); i++ {
		s += x[i] - x[i]
	}
	return s == 0
}

// MatMulABT computes dst = a @ bᵀ. Shapes: a is m x k, b is n x k,
// dst is m x n. Used by backward passes (input gradients) and by the
// output-embedding logits (hidden @ embeddingᵀ).
func MatMulABT(dst, a, b *Matrix) {
	checkMatMulABT(dst, a, b)
	matMulABTRows(dst, a, b, 0, a.Rows)
}

func checkMatMulABT(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulABT shape mismatch (%dx%d)@(%dx%d)T->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
}

// matMulABTRows is the MatMulABT kernel over dst rows [lo, hi). Every
// element is an independent full-length Dot, so any partition of rows or
// columns is trivially bit-identical to the serial pass.
func matMulABTRows(dst, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		ar := a.Row(i)
		dr := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			dr[j] = Dot(ar, b.Row(j))
		}
	}
}

// matMulABTCols is the MatMulABT kernel over dst columns [lo, hi) — b rows
// lo..hi — used when a has too few rows to split (a small serving batch
// against a V×D embedding).
func matMulABTCols(dst, a, b *Matrix, lo, hi int) {
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		dr := dst.Row(i)
		for j := lo; j < hi; j++ {
			dr[j] = Dot(ar, b.Row(j))
		}
	}
}

// MatMulABTStream computes dst = a @ bᵀ exactly like MatMulABT but blocks
// a's rows two at a time, so each loaded b element feeds two output rows.
// This is the batched-inference kernel: a is the B×D batch of activations,
// b a weight or embedding matrix shared by the whole batch, and the row
// blocking is where batched serving earns its throughput — the per-row Dot
// is load-port bound (two loads per multiply-add), while dot2 amortizes
// the b loads across the pair (two-row blocking measures ~40% faster here;
// wider blocks spill float registers and lose it again). Every output
// element is accumulated in exactly Dot's order (four strided partials,
// pairwise combine, sequential tail), so results are bit-identical to
// MatMulABT — and a batch row computes the same bits it would in a batch
// of one, the serving layer's correctness contract.
func MatMulABTStream(dst, a, b *Matrix) {
	checkMatMulABT(dst, a, b)
	matMulABTStreamRows(dst, a, b, 0, a.Rows)
}

// matMulABTStreamRows is the MatMulABTStream kernel over dst rows [lo, hi).
// Because dot2 computes each row's result bit-identically to Dot, the
// pairing of a's rows never changes any value — any row range produces the
// same bits as MatMulABT. (The parallel backend still aligns tile starts to
// even rows so the two-row blocking keeps its throughput.)
func matMulABTStreamRows(dst, a, b *Matrix, lo, hi int) {
	n := dst.Cols
	i := lo
	for ; i+2 <= hi; i += 2 {
		a0, a1 := a.Row(i), a.Row(i+1)
		d0, d1 := dst.Row(i), dst.Row(i+1)
		for j := 0; j < n; j++ {
			d0[j], d1[j] = dot2(a0, a1, b.Row(j))
		}
	}
	if i < hi {
		ar := a.Row(i)
		dr := dst.Row(i)
		for j := 0; j < n; j++ {
			dr[j] = Dot(ar, b.Row(j))
		}
	}
}

// matMulABTStreamCols is the MatMulABTStream kernel over dst columns
// [lo, hi): the full two-row blocking over a, restricted to b rows lo..hi.
func matMulABTStreamCols(dst, a, b *Matrix, lo, hi int) {
	i := 0
	for ; i+2 <= a.Rows; i += 2 {
		a0, a1 := a.Row(i), a.Row(i+1)
		d0, d1 := dst.Row(i), dst.Row(i+1)
		for j := lo; j < hi; j++ {
			d0[j], d1[j] = dot2(a0, a1, b.Row(j))
		}
	}
	if i < a.Rows {
		ar := a.Row(i)
		dr := dst.Row(i)
		for j := lo; j < hi; j++ {
			dr[j] = Dot(ar, b.Row(j))
		}
	}
}

// dot2 computes two inner products against one shared vector, loading each
// b element once for both rows. Per row the arithmetic is exactly Dot's —
// same four strided accumulators, same combine, same tail order — so each
// result is bit-identical to calling Dot on that row alone.
func dot2(a0, a1, b []float32) (r0, r1 float32) {
	a0 = a0[:len(b)]
	a1 = a1[:len(b)]
	var s00, s01, s02, s03 float32
	var s10, s11, s12, s13 float32
	n := len(b) &^ 3
	for i := 0; i < n; i += 4 {
		b0, b1, b2, b3 := b[i], b[i+1], b[i+2], b[i+3]
		s00 += a0[i] * b0
		s01 += a0[i+1] * b1
		s02 += a0[i+2] * b2
		s03 += a0[i+3] * b3
		s10 += a1[i] * b0
		s11 += a1[i+1] * b1
		s12 += a1[i+2] * b2
		s13 += a1[i+3] * b3
	}
	r0 = (s00 + s01) + (s02 + s03)
	r1 = (s10 + s11) + (s12 + s13)
	for i := n; i < len(b); i++ {
		r0 += a0[i] * b[i]
		r1 += a1[i] * b[i]
	}
	return r0, r1
}

// AddInPlace computes dst += src elementwise.
func AddInPlace(dst, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: AddInPlace length mismatch")
	}
	for i, v := range src {
		dst[i] += v
	}
}

// Axpy computes dst += alpha * src.
func Axpy(alpha float32, dst, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: Axpy length mismatch")
	}
	axpy(alpha, dst, src)
}

// axpy is the unchecked, 4-way unrolled kernel behind Axpy and the matmul
// inner loops (callers guarantee equal lengths).
func axpy(alpha float32, dst, src []float32) {
	n := len(dst) &^ 3
	for i := 0; i < n; i += 4 {
		dst[i] += alpha * src[i]
		dst[i+1] += alpha * src[i+1]
		dst[i+2] += alpha * src[i+2]
		dst[i+3] += alpha * src[i+3]
	}
	for i := n; i < len(dst); i++ {
		dst[i] += alpha * src[i]
	}
}

// Scale multiplies every element by alpha.
func Scale(x []float32, alpha float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Dot returns the inner product of a and b. Four independent accumulators
// break the floating-point add latency chain that serializes the naive
// loop, which is what lets the backward passes' a@bᵀ products run at
// memory speed instead of FLOP-latency speed.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	var s0, s1, s2, s3 float32
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for i := n; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// L2Norm returns the Euclidean norm of x (accumulated in float64 for
// stability).
func L2Norm(x []float32) float64 {
	var sum float64
	for _, v := range x {
		sum += float64(v) * float64(v)
	}
	return math.Sqrt(sum)
}

// GatherRows copies src rows indexed by idx into dst: dst.Row(i) =
// src.Row(idx[i]). This is the embedding lookup of §II-A (the K x D dense
// activation matrix built from the |V| x D embedding matrix).
func GatherRows(dst, src *Matrix, idx []int) {
	if dst.Cols != src.Cols || dst.Rows != len(idx) {
		panic("tensor: GatherRows shape mismatch")
	}
	for i, j := range idx {
		copy(dst.Row(i), src.Row(j))
	}
}

// ScatterAddRows accumulates src rows into dst rows selected by idx:
// dst.Row(idx[i]) += src.Row(i). This is the embedding gradient update of
// §II-A — multiple tokens of the same word accumulate into one row, which is
// exactly the operation the paper's uniqueness technique reorganizes.
func ScatterAddRows(dst, src *Matrix, idx []int) {
	if dst.Cols != src.Cols || src.Rows != len(idx) {
		panic("tensor: ScatterAddRows shape mismatch")
	}
	for i, j := range idx {
		AddInPlace(dst.Row(j), src.Row(i))
	}
}

// Sigmoid computes 1/(1+e^-x) elementwise into dst.
func Sigmoid(dst, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: Sigmoid length mismatch")
	}
	for i, v := range src {
		dst[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
}

// Tanh computes tanh elementwise into dst.
func Tanh(dst, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: Tanh length mismatch")
	}
	for i, v := range src {
		dst[i] = float32(math.Tanh(float64(v)))
	}
}

// SoftmaxRow normalizes a single logit vector into a probability
// distribution in place, using the max-subtraction trick for stability.
func SoftmaxRow(x []float32) {
	if len(x) == 0 {
		return
	}
	maxV := x[0]
	for _, v := range x[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range x {
		e := math.Exp(float64(v - maxV))
		x[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range x {
		x[i] *= inv
	}
}

// LogSumExpRow returns log(sum(exp(x))) computed stably.
func LogSumExpRow(x []float32) float64 {
	if len(x) == 0 {
		return math.Inf(-1)
	}
	maxV := x[0]
	for _, v := range x[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for _, v := range x {
		sum += math.Exp(float64(v - maxV))
	}
	return float64(maxV) + math.Log(sum)
}

// ClipL2 rescales x in place so its L2 norm does not exceed maxNorm, and
// returns the pre-clip norm. Gradient clipping keeps the scaled-down RNN
// training runs stable.
func ClipL2(x []float32, maxNorm float64) float64 {
	n := L2Norm(x)
	if n > maxNorm && n > 0 {
		Scale(x, float32(maxNorm/n))
	}
	return n
}
