//go:build !race

package tensor

const raceEnabled = false
