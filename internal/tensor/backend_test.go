package tensor

import (
	"fmt"
	"math"
	"testing"

	"zipflm/internal/rng"
)

// backendShapes are the (m, k, n) problem sizes the bit-identity property
// test sweeps: empty, zero-row, zero-inner, single-row (the serving batch-1
// shape, which tiles columns), odd extents, widths not divisible by the
// kernels' 4-wide unrolling, and sizes above parallelMinWork so the tiled
// dispatch path actually runs.
var backendShapes = [][3]int{
	{0, 0, 0},
	{0, 5, 3},
	{3, 0, 4},
	{1, 7, 5},
	{7, 9, 5},
	{5, 6, 3},
	{1, 64, 512},
	{33, 65, 29},
	{48, 33, 47},
}

// backendWorkerCounts includes 1 (Serial), even and odd splits, and more
// workers than this container has cores.
var backendWorkerCounts = []int{1, 2, 3, 4, 7}

// bitsEqual compares two matrices for exact bit equality (NaNs included —
// tolerance-based comparison would hide both low-order drift and poison
// values, the two things the backend contract forbids).
func bitsEqual(t *testing.T, ctx string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: got %dx%d, want %dx%d", ctx, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("%s: element %d = %v (bits %08x), serial %v (bits %08x)",
				ctx, i, got.Data[i], math.Float32bits(got.Data[i]),
				want.Data[i], math.Float32bits(want.Data[i]))
		}
	}
}

// TestBackendBitIdentity is the backend contract: every kernel, at every
// worker count, over every shape — including degenerate and unaligned ones —
// produces exactly the bits the serial reference produces.
func TestBackendBitIdentity(t *testing.T) {
	r := rng.New(99)
	for _, shape := range backendShapes {
		m, k, n := shape[0], shape[1], shape[2]

		// Operands per kernel orientation (see the package functions).
		a := randMatrix(r, m, k)  // MatMul, ABT, Stream
		at := randMatrix(r, k, m) // ATB, ATBAcc (transposed-left operand)
		b := randMatrix(r, k, n)  // MatMul, ATB, ATBAcc
		bt := randMatrix(r, n, k) // ABT, Stream (transposed-right operand)
		acc := randMatrix(r, m, n)

		wantMM := NewMatrix(m, n)
		MatMul(wantMM, a, b)
		wantATB := NewMatrix(m, n)
		MatMulATB(wantATB, at, b)
		wantAcc := NewMatrix(m, n)
		copy(wantAcc.Data, acc.Data)
		MatMulATBAcc(wantAcc, at, b)
		wantABT := NewMatrix(m, n)
		MatMulABT(wantABT, a, bt)
		wantStream := NewMatrix(m, n)
		MatMulABTStream(wantStream, a, bt)

		for _, workers := range backendWorkerCounts {
			be := New(workers)
			ctx := fmt.Sprintf("shape %dx%dx%d workers %d", m, k, n, workers)

			got := NewMatrix(m, n)
			be.MatMul(got, a, b)
			bitsEqual(t, ctx+" MatMul", got, wantMM)

			got.Zero()
			be.MatMulATB(got, at, b)
			bitsEqual(t, ctx+" MatMulATB", got, wantATB)

			copy(got.Data, acc.Data)
			be.MatMulATBAcc(got, at, b)
			bitsEqual(t, ctx+" MatMulATBAcc", got, wantAcc)

			got.Zero()
			be.MatMulABT(got, a, bt)
			bitsEqual(t, ctx+" MatMulABT", got, wantABT)

			got.Zero()
			be.MatMulABTStream(got, a, bt)
			bitsEqual(t, ctx+" MatMulABTStream", got, wantStream)

			if p, ok := be.(*Parallel); ok {
				p.Close()
			}
		}
	}
}

// TestBackendSharedAcrossCalls exercises one long-lived Parallel across many
// consecutive calls (the trainer and server hold a single instance for the
// whole process) — reusing the parked helpers must stay bit-identical.
func TestBackendSharedAcrossCalls(t *testing.T) {
	r := rng.New(7)
	p := NewParallel(4)
	defer p.Close()
	for trial := 0; trial < 20; trial++ {
		m, k, n := r.Intn(40)+1, r.Intn(40)+1, r.Intn(40)+1
		a, b := randMatrix(r, m, k), randMatrix(r, k, n)
		want := NewMatrix(m, n)
		MatMul(want, a, b)
		got := NewMatrix(m, n)
		p.MatMul(got, a, b)
		bitsEqual(t, fmt.Sprintf("trial %d (%dx%dx%d)", trial, m, k, n), got, want)
	}
}

// TestBackendNaNInfPropagation is the regression test for the zero-skip
// poison bug: the kernels skip the inner loop when a[i][k] == 0, but IEEE
// 0×Inf and 0×NaN are NaN, so skipping a b-row that carries Inf/NaN silently
// dropped the poison instead of propagating it. The skip is now gated on the
// b-row being finite; NaN and Inf must reach the output — and identically
// through every backend.
func TestBackendNaNInfPropagation(t *testing.T) {
	poisons := []float32{float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1))}
	for pi, poison := range poisons {
		r := rng.New(uint64(1000 + pi))
		// Shape large enough to dispatch tiles at workers > 1.
		m, k, n := 17, 33, 64

		a := randMatrix(r, m, k)
		b := randMatrix(r, k, n)
		// Zero an entire a-column so every row skips k = 5, and poison that
		// b-row: the buggy skip loses it, the finite-gated skip keeps it.
		for i := 0; i < m; i++ {
			a.Set(i, 5, 0)
		}
		b.Set(5, 12, poison)

		want := NewMatrix(m, n)
		MatMul(want, a, b)
		for i := 0; i < m; i++ {
			if v := want.At(i, 12); !math.IsNaN(float64(v)) && !math.IsInf(float64(v), 0) {
				t.Fatalf("serial MatMul dropped %v: row %d col 12 = %v", poison, i, v)
			}
		}

		// ATBAcc orientation: zero an a-row (skips the whole k = 5 term) and
		// poison b's k = 5 row.
		at := randMatrix(r, k, m)
		for j := 0; j < m; j++ {
			at.Set(5, j, 0)
		}
		wantAcc := NewMatrix(m, n)
		MatMulATBAcc(wantAcc, at, b)
		sawPoison := false
		for i := range wantAcc.Data {
			f := float64(wantAcc.Data[i])
			if math.IsNaN(f) || math.IsInf(f, 0) {
				sawPoison = true
				break
			}
		}
		if !sawPoison {
			t.Fatalf("serial MatMulATBAcc dropped %v entirely", poison)
		}

		for _, workers := range backendWorkerCounts {
			be := New(workers)
			ctx := fmt.Sprintf("poison %v workers %d", poison, workers)

			got := NewMatrix(m, n)
			be.MatMul(got, a, b)
			bitsEqual(t, ctx+" MatMul", got, want)

			got = NewMatrix(m, n)
			be.MatMulATBAcc(got, at, b)
			bitsEqual(t, ctx+" MatMulATBAcc", got, wantAcc)

			if p, ok := be.(*Parallel); ok {
				p.Close()
			}
		}
	}
}

// TestAllFinite pins the finiteness scan the skip gate relies on.
func TestAllFinite(t *testing.T) {
	if !allFinite(nil) || !allFinite([]float32{}) {
		t.Fatal("empty slices are vacuously finite")
	}
	if !allFinite([]float32{1, -2, 0, 3.5, -0.25}) {
		t.Fatal("finite slice misreported")
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		for pos := 0; pos < 6; pos++ { // cover unrolled body and tail
			x := []float32{1, 2, 3, 4, 5, 6}
			x[pos] = float32(bad)
			if allFinite(x) {
				t.Fatalf("allFinite missed %v at index %d", bad, pos)
			}
		}
	}
}

// TestParallelDispatchZeroAlloc guards the persistent-pool design: once the
// helpers exist, a kernel call must not allocate — the serving hot loop and
// the per-timestep training matmuls run through this path. AllocsPerRun
// warms up once before measuring, so the pool spawn in NewParallel is
// excluded. The race detector instruments channel ops with allocations, so
// the measurement is meaningless under -race.
func TestParallelDispatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	p := NewParallel(4)
	defer p.Close()
	r := rng.New(5)
	a := randMatrix(r, 64, 64)
	b := randMatrix(r, 64, 64)
	bt := randMatrix(r, 64, 64)
	dst := NewMatrix(64, 64)
	kernels := map[string]func(){
		"MatMul":          func() { p.MatMul(dst, a, b) },
		"MatMulATBAcc":    func() { p.MatMulATBAcc(dst, a, b) },
		"MatMulABT":       func() { p.MatMulABT(dst, a, bt) },
		"MatMulABTStream": func() { p.MatMulABTStream(dst, a, bt) },
	}
	for name, fn := range kernels {
		if allocs := testing.AllocsPerRun(50, fn); allocs != 0 {
			t.Errorf("%s: %v allocations per call through the parallel backend, want 0", name, allocs)
		}
	}
}

// TestBackendConstructors pins the knob semantics the commands rely on.
func TestBackendConstructors(t *testing.T) {
	if _, ok := New(0).(Serial); !ok {
		t.Fatal("New(0) must be the serial reference")
	}
	if _, ok := New(1).(Serial); !ok {
		t.Fatal("New(1) must be the serial reference")
	}
	p, ok := New(3).(*Parallel)
	if !ok {
		t.Fatal("New(3) must be a *Parallel")
	}
	if p.Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", p.Workers())
	}
	p.Close()
	p.Close() // idempotent

	SetDefaultWorkers(2)
	if Default().Workers() != 2 {
		t.Fatal("SetDefaultWorkers(2) not reflected in Default()")
	}
	SetDefaultWorkers(0)
	if Default().Workers() != 1 {
		t.Fatal("SetDefaultWorkers(0) must restore the serial default")
	}
}
