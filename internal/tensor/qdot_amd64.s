//go:build amd64

#include "textflag.h"

// func cpuHasSSE41() bool
TEXT ·cpuHasSSE41(SB), NOSPLIT, $0-1
	MOVL	$1, AX
	XORL	CX, CX
	CPUID
	SHRL	$19, CX
	ANDL	$1, CX
	MOVB	CX, ret+0(FP)
	RET

// func qdotSSE41(a *float32, codes *int8, scales *float32, n, chunk int) float32
//
// qdotGo's arithmetic, vectorized without reordering it: the sixteen strided
// partials are four XMM accumulators (X0..X3, lane j of X_g holding partial
// 4g+j), each 16-wide block issues four convert-multiply-accumulate groups,
// the combine tree (X0+X1)+(X2+X3) then ((c0+c1)+(c2+c3)) reproduces the
// canonical reduction exactly, the sub-16 tail runs scalar, and each chunk
// sum is scaled once into the running total in ascending chunk order.
TEXT ·qdotSSE41(SB), NOSPLIT, $0-44
	MOVQ	a+0(FP), SI
	MOVQ	codes+8(FP), DI
	MOVQ	scales+16(FP), DX
	MOVQ	n+24(FP), CX
	MOVQ	chunk+32(FP), R8
	XORPS	X7, X7             // running total

chunkLoop:
	TESTQ	CX, CX
	JLE	done
	MOVQ	R8, R9             // clen = min(chunk, remaining)
	CMPQ	R9, CX
	JLE	clenOK
	MOVQ	CX, R9
clenOK:
	MOVQ	R9, R10            // vectorized prefix = clen &^ 15
	ANDQ	$-16, R10
	XORPS	X0, X0
	XORPS	X1, X1
	XORPS	X2, X2
	XORPS	X3, X3
	XORQ	R11, R11           // element index within chunk

vec16:
	CMPQ	R11, R10
	JGE	vecDone
	MOVSS	(DI)(R11*1), X4    // 4 int8 codes (32-bit load)
	PMOVSXBD	X4, X4
	CVTPL2PS	X4, X4
	MOVUPS	(SI)(R11*4), X5
	MULPS	X5, X4
	ADDPS	X4, X0
	MOVSS	4(DI)(R11*1), X4
	PMOVSXBD	X4, X4
	CVTPL2PS	X4, X4
	MOVUPS	16(SI)(R11*4), X5
	MULPS	X5, X4
	ADDPS	X4, X1
	MOVSS	8(DI)(R11*1), X4
	PMOVSXBD	X4, X4
	CVTPL2PS	X4, X4
	MOVUPS	32(SI)(R11*4), X5
	MULPS	X5, X4
	ADDPS	X4, X2
	MOVSS	12(DI)(R11*1), X4
	PMOVSXBD	X4, X4
	CVTPL2PS	X4, X4
	MOVUPS	48(SI)(R11*4), X5
	MULPS	X5, X4
	ADDPS	X4, X3
	ADDQ	$16, R11
	JMP	vec16

vecDone:
	ADDPS	X1, X0             // lane j: p[j] + p[4+j]
	ADDPS	X3, X2             // lane j: p[8+j] + p[12+j]
	ADDPS	X2, X0             // lane j: c[j]
	MOVAPS	X0, X4
	SHUFPS	$0x55, X4, X4      // c1
	MOVAPS	X0, X5
	SHUFPS	$0xAA, X5, X5      // c2
	MOVAPS	X0, X6
	SHUFPS	$0xFF, X6, X6      // c3
	ADDSS	X4, X0             // c0 + c1
	ADDSS	X6, X5             // c2 + c3
	ADDSS	X5, X0             // chunk sum s

tail:
	CMPQ	R11, R9
	JGE	tailDone
	MOVBLSX	(DI)(R11*1), AX
	CVTSL2SS	AX, X4
	MULSS	(SI)(R11*4), X4
	ADDSS	X4, X0
	INCQ	R11
	JMP	tail

tailDone:
	MOVSS	(DX), X4           // total += scale * s
	MULSS	X0, X4
	ADDSS	X4, X7
	ADDQ	$4, DX
	LEAQ	(SI)(R9*4), SI
	ADDQ	R9, DI
	SUBQ	R9, CX
	JMP	chunkLoop

done:
	MOVSS	X7, ret+40(FP)
	RET
