//go:build amd64

package tensor

// useQdotAsm gates the SSE4.1 qdot kernel. PMOVSXBD (int8→int32 in
// registers) is the one instruction past the amd64 baseline, so the gate is
// a CPUID check; everything else in the kernel is SSE2.
var useQdotAsm = cpuHasSSE41()

// cpuHasSSE41 reports SSE4.1 support (CPUID.1:ECX bit 19).
func cpuHasSSE41() bool

// qdotSSE41 is qdotGo in SSE4.1 assembly: the same sixteen partials (four
// vector accumulators), the same combine tree, the same sequential tail and
// per-chunk scaling — bit-identical by construction, four lanes per cycle in
// practice. n is len(codes); a must hold at least n elements and scales one
// per chunk.
func qdotSSE41(a *float32, codes *int8, scales *float32, n, chunk int) float32
