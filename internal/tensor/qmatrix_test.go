package tensor

import (
	"math"
	"testing"

	"zipflm/internal/rng"
)

// TestQuantizeErrorBound is the quantized-storage property: round-to-nearest
// onto the per-chunk grid puts every dequantized element within half its
// chunk's scale of the original (a hair of slack covers float32 rounding of
// the scale and the product).
func TestQuantizeErrorBound(t *testing.T) {
	r := rng.New(41)
	for _, shape := range [][2]int{{1, 5}, {3, 64}, {7, 65}, {19, 200}, {33, 1}} {
		for _, chunk := range []int{1, 3, 64, DefaultQChunk} {
			m := randMatrix(r, shape[0], shape[1])
			q := QuantizeMatrix(m, chunk)
			deq := q.Dequantize()
			for row := 0; row < m.Rows; row++ {
				scales := q.RowScales(row)
				for c := 0; c < m.Cols; c++ {
					scale := float64(scales[c/chunk])
					err := math.Abs(float64(deq.At(row, c)) - float64(m.At(row, c)))
					if bound := scale/2*(1+1e-5) + 1e-30; err > bound {
						t.Fatalf("%dx%d chunk %d: |deq-orig| = %g at (%d,%d) exceeds scale/2 = %g",
							shape[0], shape[1], chunk, err, row, c, scale/2)
					}
				}
			}
		}
	}
}

// TestQuantizeDeterministic: quantization is a pure function of the weights —
// two quantizations of equal matrices produce identical codes and scales.
func TestQuantizeDeterministic(t *testing.T) {
	r := rng.New(43)
	m := randMatrix(r, 17, 130)
	q1 := QuantizeMatrix(m, 0)
	q2 := QuantizeMatrix(m.Clone(), 0)
	if q1.Chunk != DefaultQChunk {
		t.Fatalf("default chunk = %d, want %d", q1.Chunk, DefaultQChunk)
	}
	for i := range q1.Data {
		if q1.Data[i] != q2.Data[i] {
			t.Fatalf("code %d differs across quantizations: %d vs %d", i, q1.Data[i], q2.Data[i])
		}
	}
	for i := range q1.Scales {
		if math.Float32bits(q1.Scales[i]) != math.Float32bits(q2.Scales[i]) {
			t.Fatalf("scale %d differs across quantizations", i)
		}
	}
}

// TestQuantizeSanitizes: ±Inf saturates to the finite grid extreme and NaN
// drops to zero, mirroring compress.Quant8's wire sanitation.
func TestQuantizeSanitizes(t *testing.T) {
	m := NewMatrixFrom(1, 4, []float32{float32(math.Inf(1)), float32(math.NaN()), -2, float32(math.Inf(-1))})
	q := QuantizeMatrix(m, 4)
	if q.Row(0)[0] != 127 || q.Row(0)[1] != 0 || q.Row(0)[3] != -127 {
		t.Fatalf("sanitized codes = %v, want [127 0 * -127]", q.Row(0))
	}
	deq := q.Dequantize()
	for i, v := range deq.Row(0) {
		if math.IsNaN(float64(v)) {
			t.Fatalf("dequantized element %d is NaN", i)
		}
	}
}

// TestQ8KernelBitIdentity is the quantized half of the backend contract:
// MatMulABTStreamQ8 and MatVecQ8 produce the serial reference's exact bits at
// every worker count and shape (including the batch-1 column-tiled decode
// shape and extents that straddle chunk boundaries), and MatVecQ8 agrees
// bitwise with a one-row MatMulABTStreamQ8.
func TestQ8KernelBitIdentity(t *testing.T) {
	r := rng.New(47)
	shapes := [][3]int{ // (batch rows, inner, quantized rows)
		{1, 7, 5},
		{2, 64, 33},
		{3, 65, 29},
		{1, 64, 512},
		{5, 130, 47},
		{8, 96, 600},
	}
	for _, shape := range shapes {
		m, k, n := shape[0], shape[1], shape[2]
		a := randMatrix(r, m, k)
		b := QuantizeMatrix(randMatrix(r, n, k), 0)

		want := NewMatrix(m, n)
		MatMulABTStreamQ8(want, a, b)

		// Serial reference agrees with explicit dequantize + FP32 stream up
		// to nothing at all when the chunk scaling orders match — but the
		// orders differ by construction (per-chunk scaling), so the real
		// reference here is the package function itself; the FP32 kernel
		// comparison is a loose sanity check.
		deq := b.Dequantize()
		loose := NewMatrix(m, n)
		MatMulABTStream(loose, a, deq)
		for i := range want.Data {
			d := math.Abs(float64(want.Data[i]) - float64(loose.Data[i]))
			if d > 1e-2*(1+math.Abs(float64(loose.Data[i]))) {
				t.Fatalf("(%d,%d,%d): q8 kernel diverges from dequantized reference: %v vs %v",
					m, k, n, want.Data[i], loose.Data[i])
			}
		}

		for _, workers := range backendWorkerCounts {
			be := New(workers)
			got := NewMatrix(m, n)
			be.MatMulABTStreamQ8(got, a, b)
			bitsEqual(t, "MatMulABTStreamQ8", got, want)

			vec := make([]float32, n)
			be.MatVecQ8(vec, b, a.Row(0))
			for j := 0; j < n; j++ {
				if math.Float32bits(vec[j]) != math.Float32bits(want.At(0, j)) {
					t.Fatalf("(%d,%d,%d) workers=%d: MatVecQ8[%d] = %v, stream row 0 = %v",
						m, k, n, workers, j, vec[j], want.At(0, j))
				}
			}
			if p, ok := be.(*Parallel); ok {
				p.Close()
			}
		}
	}
}

// TestQdotAsmMatchesGo holds the SSE4.1 kernel to the portable definition:
// across shapes that exercise every code path — sub-16 chunks (pure tail),
// exact 16/64 multiples (pure vector), straddling extents, chunk-boundary
// partials, negative codes, denormal-scale chunks — the assembly result must
// be bit-identical to qdotGo. Skipped where the asm kernel doesn't run.
func TestQdotAsmMatchesGo(t *testing.T) {
	if !useQdotAsm {
		t.Skip("no assembly qdot on this build")
	}
	r := rng.New(53)
	for _, n := range []int{1, 3, 15, 16, 17, 31, 64, 65, 100, 128, 200, 1000} {
		for _, chunk := range []int{1, 3, 16, 64, DefaultQChunk} {
			a := make([]float32, n)
			for i := range a {
				a[i] = (r.Float32() - 0.5) * 4
			}
			w := NewMatrix(1, n)
			for i := range w.Data {
				w.Data[i] = (r.Float32() - 0.5) * 2
			}
			w.Data[0] = 1e-30 // denormal-adjacent scale chunk
			q := QuantizeMatrix(w, chunk)
			got := qdotSSE41(&a[0], &q.Data[0], &q.Scales[0], n, chunk)
			want := qdotGo(a, q.Data, q.Scales, chunk)
			if math.Float32bits(got) != math.Float32bits(want) {
				t.Fatalf("n=%d chunk=%d: asm %v (%#x) != go %v (%#x)",
					n, chunk, got, math.Float32bits(got), want, math.Float32bits(want))
			}
		}
	}
}

// TestQ8DispatchZeroAlloc extends the zero-allocation guarantee to the
// quantized dispatch path — the serving hot loop must stay allocation-free
// when it switches to int8 weights.
func TestQ8DispatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	p := NewParallel(4)
	defer p.Close()
	r := rng.New(7)
	a := randMatrix(r, 2, 64)
	q := QuantizeMatrix(randMatrix(r, 600, 64), 0)
	dst := NewMatrix(2, 600)
	vec := make([]float32, 600)
	kernels := map[string]func(){
		"MatMulABTStreamQ8": func() { p.MatMulABTStreamQ8(dst, a, q) },
		"MatVecQ8":          func() { p.MatVecQ8(vec, q, a.Row(0)) },
	}
	for name, fn := range kernels {
		if allocs := testing.AllocsPerRun(50, fn); allocs != 0 {
			t.Errorf("%s: %v allocations per call through the parallel backend, want 0", name, allocs)
		}
	}
}
