package tensor

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// Backend is the pluggable compute engine behind the matmul kernels: the
// model layers call these methods instead of the package functions, so one
// knob swaps the whole forward/backward/serving compute path. Every
// implementation is bit-identical to the serial reference — the repository's
// correctness contracts (resume, overlap, serving-vs-sequential) are all
// stated in exact bits, so a backend that "only" changes low-order float
// bits would break them.
type Backend interface {
	// MatMul computes dst = a @ b (see the package function).
	MatMul(dst, a, b *Matrix)
	// MatMulATB computes dst = aᵀ @ b.
	MatMulATB(dst, a, b *Matrix)
	// MatMulATBAcc computes dst += aᵀ @ b (fused gradient accumulation).
	MatMulATBAcc(dst, a, b *Matrix)
	// MatMulABT computes dst = a @ bᵀ.
	MatMulABT(dst, a, b *Matrix)
	// MatMulABTStream computes dst = a @ bᵀ with two-row blocking.
	MatMulABTStream(dst, a, b *Matrix)
	// MatMulABTStreamQ8 computes dst = a @ dequant(b)ᵀ against int8 weights
	// (the quantized serving hot path; see the package function).
	MatMulABTStreamQ8(dst, a *Matrix, b *QMatrix)
	// MatVecQ8 computes dst = dequant(q) @ x (single-sequence decode).
	MatVecQ8(dst []float32, q *QMatrix, x []float32)
	// Workers reports the tiling width (1 for the serial reference).
	Workers() int
}

// Serial is the reference backend: the package-level kernels, one
// goroutine. Its zero value is ready to use.
type Serial struct{}

// MatMul implements Backend.
func (Serial) MatMul(dst, a, b *Matrix) { MatMul(dst, a, b) }

// MatMulATB implements Backend.
func (Serial) MatMulATB(dst, a, b *Matrix) { MatMulATB(dst, a, b) }

// MatMulATBAcc implements Backend.
func (Serial) MatMulATBAcc(dst, a, b *Matrix) { MatMulATBAcc(dst, a, b) }

// MatMulABT implements Backend.
func (Serial) MatMulABT(dst, a, b *Matrix) { MatMulABT(dst, a, b) }

// MatMulABTStream implements Backend.
func (Serial) MatMulABTStream(dst, a, b *Matrix) { MatMulABTStream(dst, a, b) }

// MatMulABTStreamQ8 implements Backend.
func (Serial) MatMulABTStreamQ8(dst, a *Matrix, b *QMatrix) { MatMulABTStreamQ8(dst, a, b) }

// MatVecQ8 implements Backend.
func (Serial) MatVecQ8(dst []float32, q *QMatrix, x []float32) { MatVecQ8(dst, q, x) }

// Workers implements Backend.
func (Serial) Workers() int { return 1 }

// New returns a backend tiling across n workers: Serial for n ≤ 1, a
// *Parallel otherwise.
func New(n int) Backend {
	if n <= 1 {
		return Serial{}
	}
	return NewParallel(n)
}

var defaultBackend struct {
	mu sync.Mutex
	be Backend
}

// Default returns the process-wide default backend, which model.NewLM picks
// up: Serial unless the ZIPFLM_WORKERS environment variable or
// SetDefaultWorkers selected a parallel one. The environment hook is what
// lets the whole test suite — every bit-identity contract in the repository
// — run through the parallel backend with `ZIPFLM_WORKERS=4 go test ./...`,
// which is exactly what the CI workers matrix does.
func Default() Backend {
	defaultBackend.mu.Lock()
	defer defaultBackend.mu.Unlock()
	if defaultBackend.be == nil {
		n, _ := strconv.Atoi(os.Getenv("ZIPFLM_WORKERS"))
		defaultBackend.be = New(n)
	}
	return defaultBackend.be
}

// SetDefaultWorkers replaces the default backend with one tiling across n
// workers (n ≤ 1 restores Serial). It affects models built afterwards, so
// call it before constructing them — zipflm-bench does this to thread its
// -workers flag through experiments that build their own trainers.
func SetDefaultWorkers(n int) {
	defaultBackend.mu.Lock()
	defaultBackend.be = New(n)
	defaultBackend.mu.Unlock()
}

// parallelMinWork is the fused-multiply-add count below which dispatching
// tiles costs more than it saves; smaller calls run serially on the caller.
// The cut keeps the per-token serving path (tiny batches against small
// weights) on the zero-overhead kernel while training-sized products tile.
const parallelMinWork = 1 << 15

// Parallel is a goroutine-tiled backend. Each kernel call partitions its
// output — rows when there are enough of them, columns otherwise (a batch-1
// activation against a V×D embedding tiles the vocabulary axis) — into one
// contiguous tile per worker with boundaries that are a pure function of the
// shape and worker count. Every tile writes a disjoint output range and
// computes each element with exactly the serial kernel's operation order,
// so results are bit-identical to Serial at every worker count: no atomic
// adds, no reduction trees, no scheduling dependence.
//
// The workers−1 helper goroutines are persistent (spawned once in
// NewParallel, parked on a channel between calls) and the dispatch path
// performs no allocation, preserving the zero-alloc guarantees of the
// serving hot loop. A Parallel may be shared — concurrent kernel calls
// serialize on an internal mutex, each call then using every worker — which
// is how the trainer gives all simulated ranks one compute device.
type Parallel struct {
	mu      sync.Mutex
	workers int
	job     *parallelJob
}

type kernelKind uint8

const (
	kkMatMul kernelKind = iota
	kkATBAcc
	kkABT
	kkABTStream
	kkABTStreamQ8
	kkMatVecQ8
)

// parallelJob is the state shared with the helper goroutines. The helpers
// hold only this struct (not the Parallel), so an unreachable backend can be
// collected and its cleanup can retire the helpers.
//
// Lifecycle discipline: helpers touch the job fields only between receiving
// a wake token and sending the matching ack, and the dispatching caller
// waits for every ack before returning. Helpers are therefore quiescent
// whenever a new dispatch writes the fields — no generation counters or
// atomic field publication needed, and the race detector agrees.
type parallelJob struct {
	wake chan struct{} // capacity workers-1; one token per helper per call
	ack  chan struct{} // capacity workers-1; one ack per token
	quit chan struct{}
	once sync.Once // guards close(quit): Close and the GC cleanup may both run

	kind      kernelKind
	dst, a, b *Matrix
	qb        *QMatrix  // quantized operand (kkABTStreamQ8, kkMatVecQ8)
	yv, xv    []float32 // vector operands (kkMatVecQ8)
	byCols    bool
	units     int // rows or columns being tiled
	tiles     int
	next      atomic.Int64 // tile claim counter
}

// NewParallel returns a backend tiling across n workers (helper goroutines
// plus the calling goroutine). n is clamped to at least 1; more workers than
// GOMAXPROCS is allowed — results do not depend on n, only speed does.
// Helpers persist until Close or until the backend is garbage collected.
func NewParallel(n int) *Parallel {
	if n < 1 {
		n = 1
	}
	p := &Parallel{
		workers: n,
		job: &parallelJob{
			wake: make(chan struct{}, n-1),
			ack:  make(chan struct{}, n-1),
			quit: make(chan struct{}),
		},
	}
	for i := 0; i < n-1; i++ {
		go p.job.run()
	}
	if n > 1 {
		// Helpers reference the job, not the Parallel, so an abandoned
		// backend becomes unreachable and the finalizer retires them.
		runtime.SetFinalizer(p, func(p *Parallel) { p.job.close() })
	}
	return p
}

// Workers implements Backend.
func (p *Parallel) Workers() int { return p.workers }

// Close retires the helper goroutines. The backend must be idle; it is not
// usable afterwards. Close is optional — an unreachable Parallel releases
// its helpers via a GC cleanup — and idempotent.
func (p *Parallel) Close() { p.job.close() }

func (j *parallelJob) close() { j.once.Do(func() { close(j.quit) }) }

// run is the helper loop: wait for a token, claim and execute tiles until
// none remain, ack.
func (j *parallelJob) run() {
	for {
		select {
		case <-j.wake:
			j.claim()
			j.ack <- struct{}{}
		case <-j.quit:
			return
		}
	}
}

// claim executes tiles until the counter exhausts. The caller participates
// too, so a late-scheduled helper costs nothing but its own idle time.
func (j *parallelJob) claim() {
	for {
		t := int(j.next.Add(1)) - 1
		if t >= j.tiles {
			return
		}
		j.runTile(t)
	}
}

// bound returns tile boundary t. Boundaries depend only on (units, tiles),
// never on scheduling — the determinism the bit-identity contract needs.
// Stream row tiles align to even starts so dot2's two-row blocking keeps its
// pairing (values would be identical anyway; see matMulABTStreamRows).
func (j *parallelJob) bound(t int) int {
	v := t * j.units / j.tiles
	if (j.kind == kkABTStream || j.kind == kkABTStreamQ8) && !j.byCols && t > 0 && t < j.tiles {
		v &^= 1
	}
	return v
}

func (j *parallelJob) runTile(t int) {
	lo, hi := j.bound(t), j.bound(t+1)
	if lo >= hi {
		return
	}
	switch j.kind {
	case kkMatMul:
		if j.byCols {
			matMulCols(j.dst, j.a, j.b, lo, hi)
		} else {
			matMulRows(j.dst, j.a, j.b, lo, hi)
		}
	case kkATBAcc:
		if j.byCols {
			matMulATBAccCols(j.dst, j.a, j.b, lo, hi)
		} else {
			matMulATBAccRows(j.dst, j.a, j.b, lo, hi)
		}
	case kkABT:
		if j.byCols {
			matMulABTCols(j.dst, j.a, j.b, lo, hi)
		} else {
			matMulABTRows(j.dst, j.a, j.b, lo, hi)
		}
	case kkABTStream:
		if j.byCols {
			matMulABTStreamCols(j.dst, j.a, j.b, lo, hi)
		} else {
			matMulABTStreamRows(j.dst, j.a, j.b, lo, hi)
		}
	case kkABTStreamQ8:
		if j.byCols {
			matMulABTStreamQ8Cols(j.dst, j.a, j.qb, lo, hi)
		} else {
			matMulABTStreamQ8Rows(j.dst, j.a, j.qb, lo, hi)
		}
	case kkMatVecQ8:
		matVecQ8Range(j.yv, j.qb, j.xv, lo, hi)
	}
}

// dispatch fans one kernel call across the workers and returns when every
// tile has finished. Zero allocations: the job struct is reused, tokens ride
// preallocated buffered channels.
func (p *Parallel) dispatch(kind kernelKind, dst, a, b *Matrix, rows, cols int) {
	j := p.job
	p.mu.Lock()
	j.kind, j.dst, j.a, j.b = kind, dst, a, b
	// Tile the larger output axis, so batch-1 shapes still spread.
	j.byCols, j.units = false, rows
	if cols > rows {
		j.byCols, j.units = true, cols
	}
	j.tiles = p.workers
	if j.tiles > j.units {
		j.tiles = j.units
	}
	j.next.Store(0)
	for i := 0; i < p.workers-1; i++ {
		j.wake <- struct{}{}
	}
	j.claim()
	for i := 0; i < p.workers-1; i++ {
		<-j.ack
	}
	// Helpers are parked again; drop matrix references so a long-lived
	// backend does not pin its last operands.
	j.dst, j.a, j.b = nil, nil, nil
	p.mu.Unlock()
}

// dispatchQ8 mirrors dispatch for the quantized kernels, carrying the
// QMatrix operand (and, for MatVecQ8, the vector operands) in dedicated job
// fields. Same lifecycle discipline, same zero-allocation guarantee.
func (p *Parallel) dispatchQ8(kind kernelKind, dst, a *Matrix, qb *QMatrix, yv, xv []float32, rows, cols int) {
	j := p.job
	p.mu.Lock()
	j.kind, j.dst, j.a, j.b = kind, dst, a, nil
	j.qb, j.yv, j.xv = qb, yv, xv
	j.byCols, j.units = false, rows
	if cols > rows {
		j.byCols, j.units = true, cols
	}
	j.tiles = p.workers
	if j.tiles > j.units {
		j.tiles = j.units
	}
	j.next.Store(0)
	for i := 0; i < p.workers-1; i++ {
		j.wake <- struct{}{}
	}
	j.claim()
	for i := 0; i < p.workers-1; i++ {
		<-j.ack
	}
	j.dst, j.a, j.qb, j.yv, j.xv = nil, nil, nil, nil, nil
	p.mu.Unlock()
}

// serialCutoff reports whether the call is too small to tile: below the
// work threshold, or degenerate. The decision is a pure function of shape,
// so it cannot perturb determinism (and even when it differs across worker
// counts, both paths compute identical bits).
func (p *Parallel) serialCutoff(m, k, n int) bool {
	return p.workers == 1 || m*k*n < parallelMinWork || m == 0 || n == 0
}

// MatMul implements Backend.
func (p *Parallel) MatMul(dst, a, b *Matrix) {
	checkMatMul(dst, a, b)
	if p.serialCutoff(a.Rows, a.Cols, b.Cols) {
		matMulRows(dst, a, b, 0, a.Rows)
		return
	}
	p.dispatch(kkMatMul, dst, a, b, a.Rows, b.Cols)
}

// MatMulATB implements Backend.
func (p *Parallel) MatMulATB(dst, a, b *Matrix) {
	checkMatMulATB(dst, a, b)
	dst.Zero()
	p.MatMulATBAcc(dst, a, b)
}

// MatMulATBAcc implements Backend.
func (p *Parallel) MatMulATBAcc(dst, a, b *Matrix) {
	checkMatMulATB(dst, a, b)
	if p.serialCutoff(a.Cols, a.Rows, b.Cols) {
		matMulATBAccRows(dst, a, b, 0, a.Cols)
		return
	}
	p.dispatch(kkATBAcc, dst, a, b, a.Cols, b.Cols)
}

// MatMulABT implements Backend.
func (p *Parallel) MatMulABT(dst, a, b *Matrix) {
	checkMatMulABT(dst, a, b)
	if p.serialCutoff(a.Rows, a.Cols, b.Rows) {
		matMulABTRows(dst, a, b, 0, a.Rows)
		return
	}
	p.dispatch(kkABT, dst, a, b, a.Rows, b.Rows)
}

// MatMulABTStream implements Backend.
func (p *Parallel) MatMulABTStream(dst, a, b *Matrix) {
	checkMatMulABT(dst, a, b)
	if p.serialCutoff(a.Rows, a.Cols, b.Rows) {
		matMulABTStreamRows(dst, a, b, 0, a.Rows)
		return
	}
	p.dispatch(kkABTStream, dst, a, b, a.Rows, b.Rows)
}

// MatMulABTStreamQ8 implements Backend. The cutoff judges the same
// fused-multiply-add count as the FP32 kernels — the int8 path does the same
// arithmetic, just against narrower loads.
func (p *Parallel) MatMulABTStreamQ8(dst, a *Matrix, b *QMatrix) {
	checkMatMulABTQ8(dst, a, b)
	if p.serialCutoff(a.Rows, a.Cols, b.Rows) {
		matMulABTStreamQ8Rows(dst, a, b, 0, a.Rows)
		return
	}
	p.dispatchQ8(kkABTStreamQ8, dst, a, b, nil, nil, a.Rows, b.Rows)
}

// MatVecQ8 implements Backend, tiling the output elements (q's rows). Each
// element is an independent qdot, so the partition is trivially bit-identical
// to the serial pass.
func (p *Parallel) MatVecQ8(dst []float32, q *QMatrix, x []float32) {
	if len(x) != q.Cols || len(dst) != q.Rows {
		MatVecQ8(dst, q, x) // delegate the panic message
		return
	}
	if p.serialCutoff(1, q.Cols, q.Rows) {
		matVecQ8Range(dst, q, x, 0, q.Rows)
		return
	}
	p.dispatchQ8(kkMatVecQ8, nil, nil, q, dst, x, q.Rows, 0)
}
