package tensor

import (
	"fmt"
	"testing"
)

// benchQPair pits the FP32 stream kernel against the int8 dequant-in-register
// kernel on the decode shape that dominates serving cost: one activation row
// against a tall weight matrix (the output embedding). SetBytes records the
// weight bytes actually streamed (4 per element vs 1), so the B/s column shows
// whether the q8 kernel converts its 4x traffic reduction into time.
func benchQPair(b *testing.B, rows, cols int) {
	w := NewMatrix(rows, cols)
	for i := range w.Data {
		w.Data[i] = float32(i%13) - 6
	}
	q := QuantizeMatrix(w, 0)
	x := NewMatrix(1, cols)
	for i := range x.Data {
		x.Data[i] = float32(i%7) * 0.25
	}
	dst := NewMatrix(1, rows)
	b.Run(fmt.Sprintf("fp32_%dx%d", rows, cols), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MatMulABTStream(dst, x, w)
		}
		b.SetBytes(int64(rows * cols * 4))
	})
	b.Run(fmt.Sprintf("q8_%dx%d", rows, cols), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MatVecQ8(dst.Data, q, x.Data)
		}
		b.SetBytes(int64(rows * cols))
	})
}

func BenchmarkQMatVec(b *testing.B) {
	benchQPair(b, 8000, 128)
	benchQPair(b, 32000, 256)
}
