//go:build race

package tensor

// raceEnabled reports whether this test binary was built with -race, so
// allocation-count assertions can skip (the detector's channel
// instrumentation allocates).
const raceEnabled = true
