package tensor

import (
	"fmt"
	"math"
)

// Quantized weight storage for the serving hot path. Single-token RNN decode
// is memory-bandwidth bound — every generated token streams the full weight
// matrices through the core once — so storing weights as int8 with per-chunk
// scales cuts the bytes touched per token 4× against float32. The scheme is
// compress.Quant8's (scale = maxAbs/127 per chunk, symmetric grid), applied
// along matrix rows so the dot-product kernels can dequantize in registers
// chunk by chunk, and rounding is strictly round-to-nearest: a given weight
// matrix always quantizes to the same bytes, which is what lets a checkpoint
// determine its quantized serving replica exactly.

// DefaultQChunk is the scale-block width used when QuantizeMatrix is given a
// non-positive chunk. 64 elements per FP32 scale keeps the scale overhead at
// ~6% of the int8 payload while the block stays small enough that one outlier
// cannot flatten a whole row's resolution.
const DefaultQChunk = 64

// QMatrix is a row-major int8 matrix with one float32 scale per Chunk-wide
// block of each row. Element (r, c) dequantizes to
// float32(Data[r*Cols+c]) * Scales[r*ChunksPerRow() + c/Chunk].
type QMatrix struct {
	Rows, Cols int
	// Chunk is the scale-block width along a row.
	Chunk int
	// Data holds Rows*Cols int8 codes.
	Data []int8
	// Scales holds Rows*ChunksPerRow() per-block scales.
	Scales []float32
}

// ChunksPerRow returns the number of scale blocks each row carries.
func (q *QMatrix) ChunksPerRow() int { return (q.Cols + q.Chunk - 1) / q.Chunk }

// Row returns a view of row r's codes.
func (q *QMatrix) Row(r int) []int8 { return q.Data[r*q.Cols : (r+1)*q.Cols] }

// RowScales returns a view of row r's scales.
func (q *QMatrix) RowScales(r int) []float32 {
	c := q.ChunksPerRow()
	return q.Scales[r*c : (r+1)*c]
}

// Bytes returns the storage footprint: one byte per element plus one FP32
// scale per block (the WireBytes accounting of compress.Quant8, per matrix).
func (q *QMatrix) Bytes() int { return len(q.Data) + 4*len(q.Scales) }

// QuantizeMatrix quantizes m to the per-chunk int8 grid with deterministic
// round-to-nearest (never stochastic — serving replicas must be a pure
// function of the checkpoint). Non-finite inputs are sanitized the way
// compress.Quant8 sanitizes wire payloads: ±Inf saturates to ±MaxFloat32,
// NaN becomes 0. A non-positive chunk selects DefaultQChunk.
func QuantizeMatrix(m *Matrix, chunk int) *QMatrix {
	if chunk <= 0 {
		chunk = DefaultQChunk
	}
	q := &QMatrix{Rows: m.Rows, Cols: m.Cols, Chunk: chunk}
	q.Data = make([]int8, m.Rows*m.Cols)
	q.Scales = make([]float32, m.Rows*q.ChunksPerRow())
	for r := 0; r < m.Rows; r++ {
		src := m.Row(r)
		codes := q.Row(r)
		scales := q.RowScales(r)
		for ci, lo := 0, 0; lo < len(src); ci, lo = ci+1, lo+chunk {
			hi := lo + chunk
			if hi > len(src) {
				hi = len(src)
			}
			scales[ci] = quantizeChunk(codes[lo:hi], src[lo:hi])
		}
	}
	return q
}

// quantizeChunk fills codes with the round-to-nearest int8 grid of src and
// returns the chunk scale (0 for an all-zero chunk, whose codes are all 0).
func quantizeChunk(codes []int8, src []float32) float32 {
	var maxAbs float32
	for _, v := range src {
		if math.IsNaN(float64(v)) {
			continue
		}
		a := v
		if math.IsInf(float64(v), 0) {
			a = math.MaxFloat32
		} else if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		for i := range codes {
			codes[i] = 0
		}
		return 0
	}
	scale := maxAbs / 127
	inv := 1 / scale
	for i, v := range src {
		if math.IsNaN(float64(v)) {
			codes[i] = 0
			continue
		}
		if math.IsInf(float64(v), 0) {
			v = float32(math.Copysign(math.MaxFloat32, float64(v)))
		}
		grid := float32(math.Round(float64(v * inv)))
		if grid > 127 {
			grid = 127
		} else if grid < -127 {
			grid = -127
		}
		codes[i] = int8(grid)
	}
	return scale
}

// Dequantize expands the codes back to float32 — the reference the quantized
// kernels are tested against, and the error-bound property's subject: every
// element lands within half its chunk's scale of the original (up to float32
// rounding), because the grid is round-to-nearest.
func (q *QMatrix) Dequantize() *Matrix {
	out := NewMatrix(q.Rows, q.Cols)
	for r := 0; r < q.Rows; r++ {
		codes := q.Row(r)
		scales := q.RowScales(r)
		dst := out.Row(r)
		for i, c := range codes {
			dst[i] = float32(c) * scales[i/q.Chunk]
		}
	}
	return out
}

func checkMatMulABTQ8(dst, a *Matrix, b *QMatrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulABTStreamQ8 shape mismatch (%dx%d)@(%dx%d)T->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
}

// MatMulABTStreamQ8 computes dst = a @ dequant(b)ᵀ without materializing the
// dequantized matrix: the quantized serving analogue of MatMulABTStream. Each
// output element is one qdot — per chunk, sixteen strided int8→float32
// partials, the fixed combine tree, sequential tail, then one multiply by
// the chunk scale into a running total in ascending chunk order. That order
// is a pure function of the shapes, independent of tiling, so every backend
// and worker count computes identical bits (the same disjoint-output
// argument as the FP32 stream kernel).
func MatMulABTStreamQ8(dst, a *Matrix, b *QMatrix) {
	checkMatMulABTQ8(dst, a, b)
	matMulABTStreamQ8Rows(dst, a, b, 0, a.Rows)
}

// matMulABTStreamQ8Rows is the kernel over dst rows [lo, hi). Every element
// is an independent qdot, so any row range matches the serial pass.
func matMulABTStreamQ8Rows(dst, a *Matrix, b *QMatrix, lo, hi int) {
	n := dst.Cols
	for i := lo; i < hi; i++ {
		ar := a.Row(i)
		dr := dst.Row(i)
		for j := 0; j < n; j++ {
			dr[j] = qdot(ar, b.Row(j), b.RowScales(j), b.Chunk)
		}
	}
}

// matMulABTStreamQ8Cols is the kernel over dst columns [lo, hi) — b rows
// lo..hi — the tiling used when a has too few rows to split (the batch-1
// decode against a V×D embedding).
func matMulABTStreamQ8Cols(dst, a *Matrix, b *QMatrix, lo, hi int) {
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		dr := dst.Row(i)
		for j := lo; j < hi; j++ {
			dr[j] = qdot(ar, b.Row(j), b.RowScales(j), b.Chunk)
		}
	}
}

// MatVecQ8 computes dst = dequant(q) @ x — the single-sequence decode fast
// path (one activation row against a quantized weight or embedding matrix).
// dst[j] is qdot(x, q.Row(j)), exactly the value MatMulABTStreamQ8 computes
// for a one-row a, so switching between the two never changes bits.
func MatVecQ8(dst []float32, q *QMatrix, x []float32) {
	if len(x) != q.Cols || len(dst) != q.Rows {
		panic(fmt.Sprintf("tensor: MatVecQ8 shape mismatch (%dx%d)@%d->%d",
			q.Rows, q.Cols, len(x), len(dst)))
	}
	matVecQ8Range(dst, q, x, 0, q.Rows)
}

// matVecQ8Range is the MatVecQ8 kernel over output elements [lo, hi). Each
// element is an independent qdot, so any partition is trivially bit-identical
// to the serial pass.
func matVecQ8Range(dst []float32, q *QMatrix, x []float32, lo, hi int) {
	for j := lo; j < hi; j++ {
		dst[j] = qdot(x, q.Row(j), q.RowScales(j), q.Chunk)
	}
}

// qdot computes dot(a, dequant(codes)) chunk by chunk: each chunk sum is
// accumulated in the canonical sixteen-partial order (see qdotGo), scaled
// once, and added to the running total in ascending chunk order. One byte
// loaded per weight instead of four, one scale multiply per chunk instead of
// one per element. On amd64 with SSE4.1 an assembly kernel runs the same
// arithmetic four lanes at a time — the sixteen partials are exactly four
// vector accumulators — converting int8→float32 in registers; qdotGo is the
// portable reference, and the two are bit-identical by construction
// (TestQdotAsmMatchesGo holds the asm to that).
func qdot(a []float32, codes []int8, scales []float32, chunk int) float32 {
	if useQdotAsm && len(codes) > 0 {
		return qdotSSE41(&a[0], &codes[0], &scales[0], len(codes), chunk)
	}
	return qdotGo(a, codes, scales, chunk)
}

// qdotGo is the portable qdot kernel and the canonical definition of the
// accumulation order: within a chunk, sixteen strided partials over
// a[i]·float32(codes[i]) (partial i%16 within each 16-wide block), combined
// as c[j] = (p[j]+p[4+j]) + (p[8+j]+p[12+j]), s = (c[0]+c[1]) + (c[2]+c[3]),
// then a sequential tail; the chunk sum is scaled once and added to the
// running total in ascending chunk order.
func qdotGo(a []float32, codes []int8, scales []float32, chunk int) float32 {
	var total float32
	for ci, lo := 0, 0; lo < len(codes); ci, lo = ci+1, lo+chunk {
		hi := lo + chunk
		if hi > len(codes) {
			hi = len(codes)
		}
		total += scales[ci] * qdotChunkGo(a[lo:hi], codes[lo:hi])
	}
	return total
}

// qdotChunkGo computes one chunk's unscaled sum in the canonical order. The
// group structure (four partials per group, four groups per 16-wide block)
// mirrors the four SSE accumulators lane for lane.
func qdotChunkGo(ac []float32, qc []int8) float32 {
	var p [16]float32
	n := len(qc) &^ 15
	for i := 0; i < n; i += 16 {
		p[0] += ac[i] * float32(qc[i])
		p[1] += ac[i+1] * float32(qc[i+1])
		p[2] += ac[i+2] * float32(qc[i+2])
		p[3] += ac[i+3] * float32(qc[i+3])
		p[4] += ac[i+4] * float32(qc[i+4])
		p[5] += ac[i+5] * float32(qc[i+5])
		p[6] += ac[i+6] * float32(qc[i+6])
		p[7] += ac[i+7] * float32(qc[i+7])
		p[8] += ac[i+8] * float32(qc[i+8])
		p[9] += ac[i+9] * float32(qc[i+9])
		p[10] += ac[i+10] * float32(qc[i+10])
		p[11] += ac[i+11] * float32(qc[i+11])
		p[12] += ac[i+12] * float32(qc[i+12])
		p[13] += ac[i+13] * float32(qc[i+13])
		p[14] += ac[i+14] * float32(qc[i+14])
		p[15] += ac[i+15] * float32(qc[i+15])
	}
	c0 := (p[0] + p[4]) + (p[8] + p[12])
	c1 := (p[1] + p[5]) + (p[9] + p[13])
	c2 := (p[2] + p[6]) + (p[10] + p[14])
	c3 := (p[3] + p[7]) + (p[11] + p[15])
	s := (c0 + c1) + (c2 + c3)
	for i := n; i < len(qc); i++ {
		s += ac[i] * float32(qc[i])
	}
	return s
}
