package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"zipflm/internal/rng"
)

func almostEq(a, b, tol float32) bool {
	return float32(math.Abs(float64(a-b))) <= tol
}

// naiveMatMul is the reference three-loop implementation the optimized
// kernels are checked against.
func naiveMatMul(a, b *Matrix, ta, tb bool) *Matrix {
	get := func(m *Matrix, t bool, r, c int) float32 {
		if t {
			return m.At(c, r)
		}
		return m.At(r, c)
	}
	rows, inner, cols := a.Rows, a.Cols, b.Cols
	if ta {
		rows, inner = a.Cols, a.Rows
	}
	if tb {
		cols = b.Rows
	}
	out := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			var sum float32
			for k := 0; k < inner; k++ {
				sum += get(a, ta, i, k) * get(b, tb, k, j)
			}
			out.Set(i, j, sum)
		}
	}
	return out
}

func randMatrix(r *rng.RNG, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	m.RandomizeNormal(r, 1)
	return m
}

func TestMatMulAgainstNaive(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 30; trial++ {
		m, k, n := r.Intn(8)+1, r.Intn(8)+1, r.Intn(8)+1
		a, b := randMatrix(r, m, k), randMatrix(r, k, n)
		dst := NewMatrix(m, n)
		MatMul(dst, a, b)
		want := naiveMatMul(a, b, false, false)
		for i := range dst.Data {
			if !almostEq(dst.Data[i], want.Data[i], 1e-4) {
				t.Fatalf("trial %d: MatMul[%d] = %v, want %v", trial, i, dst.Data[i], want.Data[i])
			}
		}
	}
}

func TestMatMulATBAgainstNaive(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 30; trial++ {
		m, k, n := r.Intn(8)+1, r.Intn(8)+1, r.Intn(8)+1
		a, b := randMatrix(r, k, m), randMatrix(r, k, n)
		dst := NewMatrix(m, n)
		MatMulATB(dst, a, b)
		want := naiveMatMul(a, b, true, false)
		for i := range dst.Data {
			if !almostEq(dst.Data[i], want.Data[i], 1e-4) {
				t.Fatalf("trial %d: MatMulATB[%d] = %v, want %v", trial, i, dst.Data[i], want.Data[i])
			}
		}
	}
}

func TestMatMulABTAgainstNaive(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 30; trial++ {
		m, k, n := r.Intn(8)+1, r.Intn(8)+1, r.Intn(8)+1
		a, b := randMatrix(r, m, k), randMatrix(r, n, k)
		dst := NewMatrix(m, n)
		MatMulABT(dst, a, b)
		want := naiveMatMul(a, b, false, true)
		for i := range dst.Data {
			if !almostEq(dst.Data[i], want.Data[i], 1e-4) {
				t.Fatalf("trial %d: MatMulABT[%d] = %v, want %v", trial, i, dst.Data[i], want.Data[i])
			}
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(4, 5)
	dst := NewMatrix(2, 5)
	for _, f := range []func(){
		func() { MatMul(dst, a, b) },
		func() { MatMulATB(dst, a, b) },
		func() { MatMulABT(dst, a, b) },
		func() { NewMatrixFrom(2, 2, make([]float32, 3)) },
		func() { NewMatrix(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected shape panic")
				}
			}()
			f()
		}()
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	r := rng.New(4)
	src := randMatrix(r, 10, 4)
	idx := []int{3, 3, 0, 9, 5}
	dst := NewMatrix(len(idx), 4)
	GatherRows(dst, src, idx)
	for i, j := range idx {
		for c := 0; c < 4; c++ {
			if dst.At(i, c) != src.At(j, c) {
				t.Fatalf("gather mismatch at (%d,%d)", i, c)
			}
		}
	}
}

// TestScatterAddAccumulatesDuplicates mirrors the paper's Figure 3 scenario:
// two tokens of the same word must accumulate into one embedding row.
func TestScatterAddAccumulatesDuplicates(t *testing.T) {
	dst := NewMatrix(5, 2)
	src := NewMatrixFrom(3, 2, []float32{1, 2, 10, 20, 100, 200})
	ScatterAddRows(dst, src, []int{1, 1, 4})
	if dst.At(1, 0) != 11 || dst.At(1, 1) != 22 {
		t.Errorf("row 1 = (%v,%v), want (11,22)", dst.At(1, 0), dst.At(1, 1))
	}
	if dst.At(4, 0) != 100 || dst.At(4, 1) != 200 {
		t.Errorf("row 4 = (%v,%v), want (100,200)", dst.At(4, 0), dst.At(4, 1))
	}
	if dst.At(0, 0) != 0 || dst.At(2, 0) != 0 || dst.At(3, 0) != 0 {
		t.Error("untouched rows must stay zero")
	}
}

func TestSoftmaxRowProperties(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) == 0 {
			return true
		}
		x := make([]float32, len(raw))
		for i, v := range raw {
			// Clamp to a sane logit range.
			x[i] = float32(math.Mod(float64(v), 30))
			if math.IsNaN(float64(x[i])) {
				x[i] = 0
			}
		}
		SoftmaxRow(x)
		var sum float64
		for _, p := range x {
			if p < 0 || p > 1 || math.IsNaN(float64(p)) {
				return false
			}
			sum += float64(p)
		}
		return math.Abs(sum-1) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxRowStability(t *testing.T) {
	x := []float32{1000, 1000, 1000}
	SoftmaxRow(x)
	for _, p := range x {
		if !almostEq(p, 1.0/3, 1e-5) {
			t.Errorf("softmax of equal large logits = %v, want 1/3", p)
		}
	}
}

func TestLogSumExp(t *testing.T) {
	x := []float32{1, 2, 3}
	want := math.Log(math.Exp(1) + math.Exp(2) + math.Exp(3))
	if got := LogSumExpRow(x); math.Abs(got-want) > 1e-6 {
		t.Errorf("LogSumExp = %v, want %v", got, want)
	}
	// Stability for huge logits.
	if got := LogSumExpRow([]float32{10000}); math.Abs(got-10000) > 1e-3 {
		t.Errorf("LogSumExp([10000]) = %v", got)
	}
	if got := LogSumExpRow(nil); !math.IsInf(got, -1) {
		t.Errorf("LogSumExp(nil) = %v, want -Inf", got)
	}
}

func TestSigmoidTanhRange(t *testing.T) {
	src := []float32{-100, -1, 0, 1, 100}
	dst := make([]float32, len(src))
	Sigmoid(dst, src)
	if !almostEq(dst[2], 0.5, 1e-6) || dst[0] > 1e-6 || dst[4] < 1-1e-6 {
		t.Errorf("sigmoid values wrong: %v", dst)
	}
	Tanh(dst, src)
	if !almostEq(dst[2], 0, 1e-6) || !almostEq(dst[0], -1, 1e-6) || !almostEq(dst[4], 1, 1e-6) {
		t.Errorf("tanh values wrong: %v", dst)
	}
}

func TestAxpyScaleDot(t *testing.T) {
	dst := []float32{1, 2, 3}
	Axpy(2, dst, []float32{10, 20, 30})
	if dst[0] != 21 || dst[1] != 42 || dst[2] != 63 {
		t.Errorf("Axpy result %v", dst)
	}
	Scale(dst, 0.5)
	if dst[0] != 10.5 {
		t.Errorf("Scale result %v", dst)
	}
	if got := Dot([]float32{1, 2}, []float32{3, 4}); got != 11 {
		t.Errorf("Dot = %v, want 11", got)
	}
}

func TestClipL2(t *testing.T) {
	x := []float32{3, 4} // norm 5
	pre := ClipL2(x, 1)
	if math.Abs(pre-5) > 1e-6 {
		t.Errorf("pre-clip norm %v, want 5", pre)
	}
	if post := L2Norm(x); math.Abs(post-1) > 1e-5 {
		t.Errorf("post-clip norm %v, want 1", post)
	}
	// No-op when under the limit.
	y := []float32{0.1, 0.1}
	ClipL2(y, 10)
	if y[0] != 0.1 {
		t.Error("clip modified a vector under the limit")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 7)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 7 {
		t.Error("Clone shares storage with original")
	}
}

func TestRowIsView(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Row(1)[2] = 42
	if m.At(1, 2) != 42 {
		t.Error("Row must be a mutable view")
	}
}

// TestMatMulABTStreamBitIdentical: the streaming traversal must produce the
// exact float32 bit pattern of MatMulABT for every shape — the batched
// inference path's correctness contract rides on this.
func TestMatMulABTStreamBitIdentical(t *testing.T) {
	r := rng.New(11)
	for _, shape := range [][3]int{{1, 16, 7}, {3, 5, 9}, {8, 33, 100}, {16, 64, 257}} {
		m, k, n := shape[0], shape[1], shape[2]
		a := randMatrix(r, m, k)
		b := randMatrix(r, n, k)
		want := NewMatrix(m, n)
		got := NewMatrix(m, n)
		MatMulABT(want, a, b)
		MatMulABTStream(got, a, b)
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("shape %v: element %d differs: %v vs %v", shape, i, want.Data[i], got.Data[i])
			}
		}
	}
}

func BenchmarkMatMul64(b *testing.B) {
	r := rng.New(1)
	a, m := randMatrix(r, 64, 64), randMatrix(r, 64, 64)
	dst := NewMatrix(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, a, m)
	}
}

func BenchmarkScatterAdd(b *testing.B) {
	r := rng.New(2)
	dst := NewMatrix(1000, 64)
	src := randMatrix(r, 256, 64)
	idx := make([]int, 256)
	for i := range idx {
		idx[i] = r.Intn(1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScatterAddRows(dst, src, idx)
	}
}
