//go:build !amd64

package tensor

// useQdotAsm: no assembly kernel on this architecture; qdot always runs the
// portable qdotGo, which defines the canonical accumulation order.
const useQdotAsm = false

func qdotSSE41(a *float32, codes *int8, scales *float32, n, chunk int) float32 {
	panic("tensor: qdotSSE41 unavailable on this architecture")
}
