package zipflm

// End-to-end integration: the full library workflow a downstream user runs —
// synthesize a corpus, train across simulated ranks with every §III
// optimization enabled, checkpoint, reload, and generate — in one test.

import (
	"bytes"
	"math"
	"testing"

	"zipflm/internal/collective"
	"zipflm/internal/core"
	"zipflm/internal/corpus"
	"zipflm/internal/half"
	"zipflm/internal/model"
	"zipflm/internal/rng"
	"zipflm/internal/sampling"
	"zipflm/internal/trainer"
)

func TestEndToEndWorkflow(t *testing.T) {
	// 1. Corpus with learnable structure.
	gen := corpus.NewMarkovGenerator(corpus.MarkovConfig{
		VocabSize:    149,
		Branching:    8,
		ZipfExponent: 1.1,
		Seed:         99,
	})
	train, valid := corpus.Split(gen.Stream(30_000), 10, 50, 99)

	// 2. Distributed training with the full optimization stack: unique
	// exchange, Zipf's-freq seeding, FP16 wire, stateful BPTT, dropout,
	// LR decay.
	cfg := trainer.Config{
		Model: model.Config{
			Vocab: 150, Dim: 12, Hidden: 16,
			RNN: model.KindLSTM, Sampled: 16,
			Stateful: true, Dropout: 0.05,
		},
		Ranks:        4,
		BatchPerRank: 2,
		SeqLen:       10,
		LR:           0.3,
		LRDecay:      0.9,
		ClipNorm:     1.0,
		Exchange:     core.UniqueExchange{},
		Wire:         half.NewScaler(512),
		SeedStrategy: sampling.ZipfFreq,
		BaseSeed:     99,
	}
	tr, err := trainer.New(cfg, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss >= res.Evals[0].Loss {
		t.Errorf("full-stack training did not improve: %v -> %v", res.Evals[0].Loss, res.FinalLoss)
	}
	if err := tr.ReplicasInSync(); err != nil {
		t.Fatal(err)
	}
	if res.Stats.WireBytesPerRank <= 0 || res.Stats.ComputeTime <= 0 || res.Stats.SyncTime <= 0 {
		t.Error("run statistics incomplete")
	}

	// 3. Checkpoint round trip.
	var buf bytes.Buffer
	if err := tr.Model(0).Save(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := model.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Score(valid, 10); math.Abs(got-res.FinalLoss) > 1e-6 {
		t.Errorf("restored model scores %v, trainer reported %v", got, res.FinalLoss)
	}

	// 4. Generation from the restored model.
	out := m.Generate(train[:4], 12, 0.8, rng.New(3))
	if len(out) != 12 {
		t.Fatalf("generated %d tokens", len(out))
	}
	for _, id := range out {
		if id < 0 || id >= cfg.Model.Vocab {
			t.Fatalf("generated id %d outside vocabulary", id)
		}
	}
}

// TestEndToEndHierarchical runs the extension engine through the same
// pipeline on a 2×2 topology.
func TestEndToEndHierarchical(t *testing.T) {
	gen := corpus.NewMarkovGenerator(corpus.MarkovConfig{
		VocabSize: 99, Branching: 6, ZipfExponent: 1.1, Seed: 7,
	})
	train, valid := corpus.Split(gen.Stream(10_000), 10, 50, 7)
	cfg := trainer.Config{
		Model:        model.Config{Vocab: 100, Dim: 10, Hidden: 12, RNN: model.KindRHN, RHNDepth: 2},
		Ranks:        4,
		BatchPerRank: 2,
		SeqLen:       8,
		LR:           0.05,
		Exchange:     core.HierarchicalExchange{Hier: collective.NewHierarchy(4, 2)},
		BaseSeed:     7,
	}
	tr, err := trainer.New(cfg, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.FinalLoss) {
		t.Fatal("hierarchical run produced NaN")
	}
	if err := tr.ReplicasInSync(); err != nil {
		t.Error(err)
	}
}
